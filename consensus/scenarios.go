package consensus

import (
	"context"
	"encoding/base64"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/consensus/scenario"
	"repro/internal/model"
)

// This file wires the scenario plane into the facade: a registry of
// named schedule generators (the fourth spec registry next to
// Algorithms, Models, Adversaries), session options attaching a schedule
// to a run, scenario grids for Sweep, and the RunScenario query the
// server and the scenario tool share.

// ScenarioEnv is what a scenario factory gets to work with: the model
// registry (for generators drawing from a model spec) and the scenario
// registry itself (for composite specs that resolve operands
// recursively).
type ScenarioEnv struct {
	Models    *ModelRegistry
	Scenarios *ScenarioRegistry

	// depth and budget bound one resolution tree: spec strings arrive
	// from untrusted sources, and without a shared allowance a deeply
	// nested composite ("repeat:1;repeat:1;..." around a long schedule)
	// performs quadratic copy work that no per-level cap can see.
	// Zero values mean "root of a fresh resolution"; ScenarioRegistry.New
	// fills them in, and composite factories pass their env through so
	// nested resolutions draw from the same allowance.
	depth  int
	budget *int
}

// Resolution-tree bounds. The round budget matches the codec's MaxRounds,
// so any schedule a single trace could hold still resolves; what it
// stops is composites re-materializing long schedules many times over.
const (
	maxScenarioResolveDepth  = 64
	maxScenarioResolveRounds = 1 << 22
)

// ScenarioFactory builds a schedule from the argument part of a spec
// string. Factories must be deterministic: the same spec resolves to the
// same schedule (randomized generators take explicit seeds).
type ScenarioFactory struct {
	Name    string
	Usage   string
	Summary string
	New     func(arg string, env ScenarioEnv) (*scenario.Schedule, error)
}

// Resolution-cache bounds: entries caps distinct specs, rounds caps the
// total graphs pinned by cached schedules (schedules are immutable and
// shared with callers, so the cache's marginal cost is the table itself
// plus whatever the caller would have dropped). A schedule too large to
// ever share the cache fairly is simply not cached.
const (
	maxScenarioCacheEntries = 256
	maxScenarioCacheRounds  = 1 << 20
)

// ScenarioRegistry maps spec names to scenario factories. It is safe for
// concurrent use.
//
// It memoizes successful resolutions: factories are deterministic by
// contract, schedules are immutable, and scenario sweeps resolve the
// same specs once per session construction — so repeated resolutions
// (sweep re-runs, grid axes sharing scenarios, server queries) return
// the already-materialized schedule, with its fingerprint memo warm.
// The cache is FIFO-bounded by entries and by total cached rounds.
type ScenarioRegistry struct {
	id uint64
	mu sync.RWMutex
	m  map[string]ScenarioFactory

	cacheMu      sync.Mutex
	cache        map[string]*scenario.Schedule
	cacheOrder   []string
	cacheHead    int
	cachedRounds int
	cacheHits    uint64
	cacheMisses  uint64
}

// NewScenarioRegistry returns an empty registry.
func NewScenarioRegistry() *ScenarioRegistry {
	return &ScenarioRegistry{id: registryIDs.Add(1), m: make(map[string]ScenarioFactory)}
}

// Register adds a factory; registering a duplicate or empty name errors.
func (r *ScenarioRegistry) Register(f ScenarioFactory) error {
	if f.Name == "" || f.New == nil {
		return fmt.Errorf("consensus: scenario factory needs a name and a constructor")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[f.Name]; dup {
		return fmt.Errorf("consensus: scenario %q already registered", f.Name)
	}
	r.m[f.Name] = f
	return nil
}

// New resolves a spec string ("name" or "name:arg") to a schedule.
// Successful resolutions are memoized (see ScenarioRegistry); the round
// budget is charged on cache hits too, so a composite tree's allowance
// is independent of cache state.
func (r *ScenarioRegistry) New(spec string, env ScenarioEnv) (*scenario.Schedule, error) {
	env.depth++
	if env.depth > maxScenarioResolveDepth {
		return nil, fmt.Errorf("consensus: scenario spec nests deeper than %d", maxScenarioResolveDepth)
	}
	if env.budget == nil {
		budget := maxScenarioResolveRounds
		env.budget = &budget
	}
	key := r.resolveCacheKey(spec, env)
	if s, ok := r.cachedSchedule(key); ok {
		if *env.budget -= s.PrefixLen() + s.LoopLen(); *env.budget < 0 {
			return nil, fmt.Errorf("consensus: scenario spec materializes more than %d rounds across its composition", maxScenarioResolveRounds)
		}
		return s, nil
	}
	name, arg := splitSpec(spec)
	r.mu.RLock()
	f, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("consensus: unknown scenario %q (have %s)", name, strings.Join(r.Names(), ", "))
	}
	s, err := f.New(arg, env)
	if err != nil {
		return nil, err
	}
	// Charge the materialized rounds against the whole tree's budget.
	if *env.budget -= s.PrefixLen() + s.LoopLen(); *env.budget < 0 {
		return nil, fmt.Errorf("consensus: scenario spec materializes more than %d rounds across its composition", maxScenarioResolveRounds)
	}
	r.storeSchedule(key, s)
	return s, nil
}

// resolveCacheKey names one resolution: the spec plus the identities of
// the registries a factory may consult (models for generator operands,
// scenarios for composite recursion). Registries only grow, so a key
// that resolved once resolves the same way forever.
func (r *ScenarioRegistry) resolveCacheKey(spec string, env ScenarioEnv) string {
	var mid, sid uint64
	if env.Models != nil {
		mid = env.Models.id
	}
	if env.Scenarios != nil {
		sid = env.Scenarios.id
	}
	return strconv.FormatUint(mid, 36) + "|" + strconv.FormatUint(sid, 36) + "|" + spec
}

// cachedSchedule looks up a memoized resolution.
func (r *ScenarioRegistry) cachedSchedule(key string) (*scenario.Schedule, bool) {
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	s, ok := r.cache[key]
	if ok {
		r.cacheHits++
	} else {
		r.cacheMisses++
	}
	return s, ok
}

// storeSchedule memoizes a successful resolution, evicting oldest-first
// (FIFO: order slice plus head index, compacted at half-waste) until the
// entry and round caps hold. Oversized schedules that would monopolize
// the round allowance are not cached.
func (r *ScenarioRegistry) storeSchedule(key string, s *scenario.Schedule) {
	rounds := s.PrefixLen() + s.LoopLen()
	if rounds > maxScenarioCacheRounds/4 {
		return
	}
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	if r.cache == nil {
		r.cache = make(map[string]*scenario.Schedule, maxScenarioCacheEntries)
	}
	if _, dup := r.cache[key]; dup {
		return // lost a race with a concurrent resolver; keep the first
	}
	for len(r.cache) >= maxScenarioCacheEntries || r.cachedRounds+rounds > maxScenarioCacheRounds {
		old := r.cacheOrder[r.cacheHead]
		r.cacheOrder[r.cacheHead] = ""
		r.cacheHead++
		if prev, ok := r.cache[old]; ok {
			r.cachedRounds -= prev.PrefixLen() + prev.LoopLen()
			delete(r.cache, old)
		}
		if r.cacheHead*2 >= len(r.cacheOrder) {
			r.cacheOrder = append(r.cacheOrder[:0], r.cacheOrder[r.cacheHead:]...)
			r.cacheHead = 0
		}
	}
	r.cache[key] = s
	r.cacheOrder = append(r.cacheOrder, key)
	r.cachedRounds += rounds
}

// ResolveCacheStats reports the resolution cache's hit/miss counts and
// current entry count.
func (r *ScenarioRegistry) ResolveCacheStats() (hits, misses uint64, entries int) {
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	return r.cacheHits, r.cacheMisses, len(r.cache)
}

// Names returns the sorted registered names.
func (r *ScenarioRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for name := range r.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Describe returns the sorted entry descriptions.
func (r *ScenarioRegistry) Describe() []FactoryInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]FactoryInfo, 0, len(r.m))
	for _, f := range r.m {
		out = append(out, FactoryInfo{Name: f.Name, Usage: f.Usage, Summary: f.Summary})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Scenarios is the default scenario registry, pre-populated with the
// built-in generators.
var Scenarios = NewScenarioRegistry()

func mustRegisterScenario(f ScenarioFactory) {
	if err := Scenarios.Register(f); err != nil {
		panic(err)
	}
}

// TraceEncoding is the base64 alphabet of inline trace specs and JSON
// trace fields. It is URL-safe and unpadded, so encoded traces survive
// spec-string composition (the '+' composite separator never occurs) and
// URLs without escaping.
var TraceEncoding = base64.RawURLEncoding

// EncodeTraceString renders a schedule as an inline trace spec,
// resolvable by the registry as "trace:<returned string>".
func EncodeTraceString(s *scenario.Schedule) string {
	return TraceEncoding.EncodeToString(s.Encode())
}

// DecodeTraceString parses the base64 payload of a "trace:" spec.
func DecodeTraceString(s string) (*scenario.Schedule, error) {
	raw, err := TraceEncoding.DecodeString(strings.TrimSpace(s))
	if err != nil {
		return nil, fmt.Errorf("consensus: bad trace base64: %v", err)
	}
	return scenario.Decode(raw)
}

// compositeOperands splits the operand list of a composite scenario
// spec on '+' at bracket depth zero. No builtin leaf spec syntax
// (base64url traces included) contains '+', but a *nested composite*
// operand does — wrap it in square brackets to protect its own '+'
// from the outer split, e.g. "interleave:[concat:A+B]+C". One outer
// bracket layer is stripped from each operand.
func compositeOperands(arg string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(arg); i++ {
		switch arg[i] {
		case '[':
			depth++
		case ']':
			if depth > 0 {
				depth--
			}
		case '+':
			if depth == 0 {
				out = append(out, stripBrackets(arg[start:i]))
				start = i + 1
			}
		}
	}
	return append(out, stripBrackets(arg[start:]))
}

// stripBrackets removes one enclosing [...] layer, if the leading '['
// matches the final ']' (so "[a]+[b]" fragments are left alone by the
// depth check above and "[a][b]" is not mangled).
func stripBrackets(s string) string {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return s
	}
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
			if depth == 0 && i != len(s)-1 {
				return s // leading '[' closes early: not one wrap
			}
		}
	}
	return s[1 : len(s)-1]
}

func parseInts(name, arg string, want int) ([]int64, error) {
	parts := strings.Split(arg, ",")
	if len(parts) != want {
		return nil, fmt.Errorf("consensus: %s wants %d comma-separated integers, got %q", name, want, arg)
	}
	out := make([]int64, want)
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("consensus: %s argument %q: %v", name, p, err)
		}
		out[i] = v
	}
	return out, nil
}

func init() {
	registerBuiltinScenarios()
}

func registerBuiltinScenarios() {
	mustRegisterScenario(ScenarioFactory{
		Name: "partitionheal", Usage: "partitionheal:N,BLOCKS,HEALAT",
		Summary: "BLOCKS isolated complete clusters for HEALAT rounds, then the complete graph forever (eventually rooted)",
		New: func(arg string, env ScenarioEnv) (*scenario.Schedule, error) {
			v, err := parseInts("partitionheal", arg, 3)
			if err != nil {
				return nil, err
			}
			return scenario.PartitionHeal(int(v[0]), int(v[1]), int(v[2]))
		},
	})
	mustRegisterScenario(ScenarioFactory{
		Name: "churn", Usage: "churn:N,SEED,PERIOD,EPOCHS,MAXDOWN",
		Summary: "EPOCHS epochs of PERIOD rounds each with a random transmitter-down subset (<= MAXDOWN agents); rooted every round",
		New: func(arg string, env ScenarioEnv) (*scenario.Schedule, error) {
			v, err := parseInts("churn", arg, 5)
			if err != nil {
				return nil, err
			}
			return scenario.Churn(int(v[0]), v[1], int(v[2]), int(v[3]), int(v[4]))
		},
	})
	mustRegisterScenario(ScenarioFactory{
		Name: "eventuallyrooted", Usage: "eventuallyrooted:N,K",
		Summary: "K silent (unrooted) rounds, then the complete graph forever — the minimal eventually-rooted(K) schedule",
		New: func(arg string, env ScenarioEnv) (*scenario.Schedule, error) {
			v, err := parseInts("eventuallyrooted", arg, 2)
			if err != nil {
				return nil, err
			}
			return scenario.EventuallyRooted(int(v[0]), int(v[1]))
		},
	})
	mustRegisterScenario(ScenarioFactory{
		Name: "frommodel", Usage: "frommodel:MODELSPEC;SEED;ROUNDS",
		Summary: "ROUNDS uniform draws from the model, materialized — the recorded form of the random adversary",
		New: func(arg string, env ScenarioEnv) (*scenario.Schedule, error) {
			parts := strings.Split(arg, ";")
			if len(parts) != 3 {
				return nil, fmt.Errorf("consensus: frommodel wants MODELSPEC;SEED;ROUNDS, got %q", arg)
			}
			m, err := env.Models.New(parts[0])
			if err != nil {
				return nil, err
			}
			seed, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("consensus: frommodel seed %q: %v", parts[1], err)
			}
			rounds, err := strconv.Atoi(strings.TrimSpace(parts[2]))
			if err != nil {
				return nil, fmt.Errorf("consensus: frommodel rounds %q: %v", parts[2], err)
			}
			return scenario.FromModel(m, seed, rounds)
		},
	})
	mustRegisterScenario(ScenarioFactory{
		Name: "trace", Usage: "trace:BASE64URL",
		Summary: "an inline encoded trace (base64url of the binary trace format)",
		New: func(arg string, env ScenarioEnv) (*scenario.Schedule, error) {
			return DecodeTraceString(arg)
		},
	})
	mustRegisterScenario(ScenarioFactory{
		Name: "repeat", Usage: "repeat:K;SPEC",
		Summary: "the operand scenario's prefix played K times (its loop preserved)",
		New: func(arg string, env ScenarioEnv) (*scenario.Schedule, error) {
			parts := strings.SplitN(arg, ";", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("consensus: repeat wants K;SPEC, got %q", arg)
			}
			k, err := strconv.Atoi(strings.TrimSpace(parts[0]))
			if err != nil {
				return nil, fmt.Errorf("consensus: repeat count %q: %v", parts[0], err)
			}
			s, err := env.Scenarios.New(parts[1], env)
			if err != nil {
				return nil, err
			}
			return scenario.Repeat(s, k)
		},
	})
	mustRegisterScenario(ScenarioFactory{
		Name: "concat", Usage: "concat:SPEC+SPEC+... (nested composites in [brackets])",
		Summary: "the operand scenarios back to back (all but the last must be finite)",
		New: func(arg string, env ScenarioEnv) (*scenario.Schedule, error) {
			parts := compositeOperands(arg)
			ss := make([]*scenario.Schedule, len(parts))
			for i, p := range parts {
				s, err := env.Scenarios.New(p, env)
				if err != nil {
					return nil, err
				}
				ss[i] = s
			}
			return scenario.Concat(ss...)
		},
	})
	mustRegisterScenario(ScenarioFactory{
		Name: "interleave", Usage: "interleave:SPEC+SPEC (nested composites in [brackets])",
		Summary: "alternate rounds of the two operand scenarios, each on its own clock",
		New: func(arg string, env ScenarioEnv) (*scenario.Schedule, error) {
			parts := compositeOperands(arg)
			if len(parts) != 2 {
				return nil, fmt.Errorf("consensus: interleave wants exactly two operands, got %d", len(parts))
			}
			a, err := env.Scenarios.New(parts[0], env)
			if err != nil {
				return nil, err
			}
			b, err := env.Scenarios.New(parts[1], env)
			if err != nil {
				return nil, err
			}
			return scenario.Interleave(a, b)
		},
	})
}

// WithScenario pins the session's per-round communication graphs to the
// given schedule — the run becomes an exact, backend-independent replay.
// It replaces the adversary (setting both errors) and fixes the agent
// count when no model or inputs do.
func WithScenario(s *scenario.Schedule) Option {
	return func(c *sessionConfig) error {
		if s == nil {
			return fmt.Errorf("consensus: nil scenario")
		}
		c.scenario = s
		return nil
	}
}

// WithScenarioSpec is WithScenario resolving the schedule from a spec
// string against the Scenarios registry (e.g. "partitionheal:8,2,5" or
// "trace:BASE64URL").
func WithScenarioSpec(spec string) Option {
	return func(c *sessionConfig) error {
		c.scenarioSpec = spec
		return nil
	}
}

// RunRecorded is Run plus capture: it returns the completed run together
// with the recorded schedule of the graphs actually played — adaptive
// adversaries (greedy, blockgreedy) included — replayable exactly via
// WithScenario on any backend.
func (s *Session) RunRecorded(ctx context.Context) (*Result, *scenario.Schedule, error) {
	res, err := s.Run(ctx)
	if err != nil {
		return nil, nil, err
	}
	sch, err := scenario.Recorded(s.N(), res.tr.Graphs)
	if err != nil {
		return nil, nil, err
	}
	return res, sch, nil
}

// Scenario returns the session's schedule, or nil for adversary-driven
// sessions.
func (s *Session) Scenario() *scenario.Schedule { return s.scenario }

// ScenarioGrid expands the cross product of scenario specs and algorithm
// specs into sweep-ready RunSpecs sharing one round budget — the batch
// form of "run every algorithm over every scenario". The grid is ordered
// scenario-major, so equal-shape entries tile together on the batch
// plane.
func ScenarioGrid(scenarios, algorithms []string, rounds int) []RunSpec {
	specs := make([]RunSpec, 0, len(scenarios)*len(algorithms))
	for _, sc := range scenarios {
		for _, alg := range algorithms {
			specs = append(specs, RunSpec{Scenario: sc, Algorithm: alg, Rounds: rounds})
		}
	}
	return specs
}

// ScenarioRequest is the input of RunScenario (and the /api/v1/scenario
// body): a schedule given either by registry spec or by uploaded binary
// trace (JSON: base64), an optional model to certify membership against,
// and an optional execution.
type ScenarioRequest struct {
	// Scenario is a registry spec ("churn:8,1,5,4,3"); Trace is an
	// encoded binary trace. Exactly one must be set.
	Scenario string `json:"scenario,omitempty"`
	Trace    []byte `json:"trace,omitempty"`
	// Model, when set, additionally certifies per-round model membership.
	Model string `json:"model,omitempty"`
	// Rounds is the certification and run horizon (default: the
	// schedule's Horizon).
	Rounds int `json:"rounds,omitempty"`
	// Run executes the schedule with Algorithm/Inputs when true;
	// otherwise the request only inspects and certifies.
	Run       bool      `json:"run,omitempty"`
	Algorithm string    `json:"algorithm,omitempty"`
	Inputs    []float64 `json:"inputs,omitempty"`
}

// ScenarioReport is the output of RunScenario: the schedule's shape and
// identity, its canonical trace (so a spec-built scenario can be
// downloaded and replayed elsewhere), its certificate, and — for Run
// requests — the run summary and diameter series.
type ScenarioReport struct {
	N              int                  `json:"n"`
	PrefixRounds   int                  `json:"prefix_rounds"`
	LoopRounds     int                  `json:"loop_rounds"`
	DistinctGraphs int                  `json:"distinct_graphs"`
	Fingerprint    string               `json:"fingerprint"`
	Trace          []byte               `json:"trace"`
	Certificate    scenario.Certificate `json:"certificate"`
	Summary        *RunSummary          `json:"summary,omitempty"`
	Diameters      []float64            `json:"diameters,omitempty"`
}

// RunScenario resolves, certifies, and optionally executes a scenario
// request — the engine behind the scenario tool and the /api/v1/scenario
// endpoint.
func RunScenario(ctx context.Context, req ScenarioRequest, opts ...QueryOption) (*ScenarioReport, error) {
	cfg := applyQueryOptions(opts)
	sch, err := resolveScenarioRequest(req, cfg.lib)
	if err != nil {
		return nil, err
	}
	return runScenarioResolved(ctx, sch, req, cfg.lib)
}

// runScenarioResolved is RunScenario past resolution, for callers (the
// server) that already materialized the schedule to validate it.
func runScenarioResolved(ctx context.Context, sch *scenario.Schedule, req ScenarioRequest, lib *Library) (*ScenarioReport, error) {
	var m *model.Model
	var err error
	if req.Model != "" {
		if m, err = lib.models().New(req.Model); err != nil {
			return nil, err
		}
	}
	cert, err := sch.Certify(ctx, req.Rounds, m)
	if err != nil {
		return nil, err
	}
	rep := &ScenarioReport{
		N:              sch.N(),
		PrefixRounds:   sch.PrefixLen(),
		LoopRounds:     sch.LoopLen(),
		DistinctGraphs: sch.DistinctGraphs(),
		Fingerprint:    sch.Fingerprint(),
		Trace:          sch.Encode(),
		Certificate:    cert,
	}
	if !req.Run {
		return rep, nil
	}
	rounds := req.Rounds
	if rounds <= 0 {
		rounds = sch.Horizon()
	}
	sessionOpts := []Option{WithScenario(sch), WithRounds(rounds), WithLibrary(lib)}
	if req.Algorithm != "" {
		sessionOpts = append(sessionOpts, WithAlgorithm(req.Algorithm))
	}
	if req.Model != "" {
		sessionOpts = append(sessionOpts, withResolvedModel(req.Model, m))
	}
	if req.Inputs != nil {
		sessionOpts = append(sessionOpts, WithInputs(req.Inputs...))
	}
	session, err := New(sessionOpts...)
	if err != nil {
		return nil, err
	}
	res, err := session.Run(ctx)
	if err != nil {
		return nil, err
	}
	summary := Summarize(res)
	rep.Summary = &summary
	rep.Diameters = res.Diameters()
	return rep, nil
}

// resolveScenarioRequest materializes the request's schedule from
// whichever of the two sources is given.
func resolveScenarioRequest(req ScenarioRequest, lib *Library) (*scenario.Schedule, error) {
	switch {
	case req.Scenario != "" && req.Trace != nil:
		return nil, fmt.Errorf("consensus: scenario request sets both a spec and a trace")
	case req.Scenario != "":
		return lib.scenarios().New(req.Scenario, ScenarioEnv{Models: lib.models(), Scenarios: lib.scenarios()})
	case req.Trace != nil:
		return scenario.Decode(req.Trace)
	default:
		return nil, fmt.Errorf("consensus: scenario request needs a spec or a trace")
	}
}
