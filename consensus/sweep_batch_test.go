package consensus

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// batchSweepSpecs returns a spec mix exercising every sweep path: one
// large tile with shared graphs (same model/adversary/seed, varying
// inputs), a tile with per-run graph sequences (varying seeds under the
// random scheduler), a second algorithm tile, a non-batchable adaptive
// adversary, a model-free spec, and a broken spec.
func batchSweepSpecs() []RunSpec {
	var specs []RunSpec
	for i := 0; i < 6; i++ {
		in := SpreadInputs(8)
		in[3] = float64(i) / 7
		specs = append(specs, RunSpec{Model: "deaf:8", Algorithm: "midpoint", Adversary: "cycle", Rounds: 40, Inputs: in})
	}
	for i := 0; i < 4; i++ {
		specs = append(specs, RunSpec{Model: "deaf:8", Algorithm: "amortized", Adversary: "random", Rounds: 25, Seed: int64(i + 1)})
	}
	specs = append(specs,
		RunSpec{Model: "psi:5", Algorithm: "mean", Adversary: "cycle", Rounds: 12},
		RunSpec{Model: "twoagent", Algorithm: "twothirds", Adversary: "greedy", Rounds: 3, Depth: 2},
		RunSpec{Algorithm: "midpoint", Adversary: "randomrooted:0.4", Inputs: []float64{0, 1, 0.25, 0.75}, Rounds: 15},
		RunSpec{Model: "deaf:8", Algorithm: "nonsense", Rounds: 5},
	)
	return specs
}

// TestSweepBatchMatchesSingle is the batch plane's acceptance
// differential at the sweep layer: the tiled execution must produce
// results deep-equal (bit-identical floats included) to the
// goroutine-per-run path, across shared-graph tiles, per-run-graph
// tiles, adaptive fallbacks, and failures. It runs under whatever
// backend the process is started with, so the agents-backend CI job
// covers the all-fallback case.
func TestSweepBatchMatchesSingle(t *testing.T) {
	specs := batchSweepSpecs()
	ctx := context.Background()
	single, err := Sweep(ctx, specs, WithSweepCache(NewSweepCache()), SweepBatchSize(1))
	if err != nil {
		t.Fatal(err)
	}
	batched, err := Sweep(ctx, specs, WithSweepCache(NewSweepCache()))
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != len(batched) {
		t.Fatalf("result count differs: %d vs %d", len(single), len(batched))
	}
	for i := range single {
		if !reflect.DeepEqual(single[i], batched[i]) {
			t.Errorf("spec %d: batched result differs\nsingle:  %+v %+v\nbatched: %+v %+v",
				i, single[i], summaryOf(single[i]), batched[i], summaryOf(batched[i]))
		}
	}
}

func summaryOf(r SweepResult) string {
	if r.Summary == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%+v", *r.Summary)
}

// TestSweepBatchSharesCacheKeys proves the batched path writes and reads
// the same cache fingerprints as the single path: a cache populated
// entirely by SweepBatchSize(1) must answer a batched sweep of the same
// specs purely from cache, and vice versa.
func TestSweepBatchSharesCacheKeys(t *testing.T) {
	specs := batchSweepSpecs()
	// Drop the broken spec (never cached).
	var ok []RunSpec
	for _, s := range specs {
		if s.Algorithm != "nonsense" {
			ok = append(ok, s)
		}
	}
	ctx := context.Background()

	cache := NewSweepCache()
	if _, err := Sweep(ctx, ok, WithSweepCache(cache), SweepBatchSize(1)); err != nil {
		t.Fatal(err)
	}
	batched, err := Sweep(ctx, ok, WithSweepCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range batched {
		if r.Err != "" {
			t.Fatalf("spec %d failed: %s", i, r.Err)
		}
		if !r.Cached {
			t.Errorf("spec %d: batched sweep did not hit the single-path cache entry", i)
		}
	}

	cache2 := NewSweepCache()
	if _, err := Sweep(ctx, ok, WithSweepCache(cache2)); err != nil {
		t.Fatal(err)
	}
	single, err := Sweep(ctx, ok, WithSweepCache(cache2), SweepBatchSize(1))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range single {
		if r.Err == "" && !r.Cached {
			t.Errorf("spec %d: single sweep did not hit the batch-path cache entry", i)
		}
	}
}

// TestSweepTileKeyDistinguishesParameterizations is the regression test
// for tiling on display names: selfweighted:0.331 and selfweighted:0.334
// both render as "self-weighted(0.33)" but are different algorithms, so
// they must not share a tile (which would step both with one alpha).
func TestSweepTileKeyDistinguishesParameterizations(t *testing.T) {
	specs := []RunSpec{
		{Model: "deaf:6", Algorithm: "selfweighted:0.331", Adversary: "cycle", Rounds: 30},
		{Model: "deaf:6", Algorithm: "selfweighted:0.334", Adversary: "cycle", Rounds: 30},
	}
	ctx := context.Background()
	single, err := Sweep(ctx, specs, WithSweepCache(NewSweepCache()), SweepBatchSize(1))
	if err != nil {
		t.Fatal(err)
	}
	batched, err := Sweep(ctx, specs, WithSweepCache(NewSweepCache()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range single {
		if !reflect.DeepEqual(single[i], batched[i]) {
			t.Errorf("spec %d: batched result differs\nsingle:  %+v %s\nbatched: %+v %s",
				i, single[i], summaryOf(single[i]), batched[i], summaryOf(batched[i]))
		}
	}
	if reflect.DeepEqual(single[0].Summary, single[1].Summary) {
		t.Fatal("test is vacuous: the two alphas produced identical summaries")
	}
}

// TestDecisionSweepBatchParity compares the batch-plane decision sweep
// (one shared trajectory sampled at every decision round) against the
// sequential per-ε path on the agents backend: every point must be
// deep-equal.
func TestDecisionSweepBatchParity(t *testing.T) {
	req := DecisionRequest{
		Model:       "deaf:5",
		Algorithm:   "midpoint",
		Contraction: 0.5,
		Eps:         []float64{0.5, 0.25, 1e-3, 1e-6, 1e-6, 1},
		Theorem:     "T9",
	}
	ctx := context.Background()
	batched, err := DecisionSweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := SetProcessBackend(BackendAgents)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _, _ = SetProcessBackend(prev) }()
	sequential, err := DecisionSweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batched, sequential) {
		t.Fatalf("decision sweep differs across paths\nbatched:    %+v\nsequential: %+v", batched, sequential)
	}
}

// TestSweepCacheBounded pins the entry cap and oldest-first eviction.
func TestSweepCacheBounded(t *testing.T) {
	cache := NewSweepCacheSize(3)
	for i := 0; i < 10; i++ {
		cache.put(fmt.Sprintf("key-%d", i), RunSummary{Rounds: i})
	}
	if _, _, entries := cache.Stats(); entries != 3 {
		t.Fatalf("cache holds %d entries, cap is 3", entries)
	}
	// The three newest survive.
	for i := 7; i < 10; i++ {
		if s, hit := cache.get(fmt.Sprintf("key-%d", i)); !hit || s.Rounds != i {
			t.Fatalf("newest entry key-%d missing after eviction", i)
		}
	}
	if _, hit := cache.get("key-0"); hit {
		t.Fatal("oldest entry survived eviction")
	}
	// Shrinking the capacity evicts down to the new bound.
	cache.setCapacity(1)
	if _, _, entries := cache.Stats(); entries != 1 {
		t.Fatalf("setCapacity(1) left %d entries", entries)
	}
	if cache.Capacity() != 1 {
		t.Fatalf("Capacity() = %d, want 1", cache.Capacity())
	}
}

// TestSweepCacheCapacityOption bounds the cache through the sweep
// option and checks Stats accounting stays consistent under concurrent
// sweeps sharing the bounded cache (run with -race).
func TestSweepCacheCapacityOption(t *testing.T) {
	cache := NewSweepCache()
	specs := make([]RunSpec, 6)
	for i := range specs {
		specs[i] = RunSpec{Model: "deaf:6", Algorithm: "midpoint", Adversary: "random", Rounds: 10, Seed: int64(i + 1)}
	}
	const workers = 6
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				results, err := Sweep(context.Background(), specs,
					WithSweepCache(cache), SweepCacheCapacity(4), SweepWorkers(2))
				if err != nil {
					t.Error(err)
					return
				}
				for _, r := range results {
					if r.Err != "" {
						t.Errorf("spec %d: %s", r.Index, r.Err)
						return
					}
					if r.Summary == nil {
						t.Errorf("spec %d: no summary", r.Index)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	hits, misses, entries := cache.Stats()
	if entries > 4 {
		t.Fatalf("bounded cache grew to %d entries, cap is 4", entries)
	}
	// Every one of the 6*3*6 spec executions issued exactly one counted
	// lookup in its prepare phase (late re-checks count hits only), so
	// the prepare accounting must cover all of them, with at least one
	// miss per distinct spec and at least one hit overall.
	if total := hits + misses; total < workers*3*6 {
		t.Fatalf("hits+misses = %d, want >= %d", total, workers*3*6)
	}
	if misses < 6 {
		t.Fatalf("misses = %d, want >= 6 (one per distinct spec)", misses)
	}
	if hits == 0 {
		t.Fatal("no cache hits across repeated concurrent sweeps")
	}
}
