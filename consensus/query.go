package consensus

import (
	"context"
	"fmt"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/model"
)

// Interval is a closed real interval [Lo, Hi], the wire form of the
// valency engine's certified bounds.
type Interval struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Diameter returns Hi - Lo, or 0 for empty (inverted) intervals.
func (iv Interval) Diameter() float64 {
	if iv.Lo > iv.Hi {
		return 0
	}
	return iv.Hi - iv.Lo
}

// withinCtx runs f honoring ctx: when ctx can be cancelled, f runs in a
// goroutine and the call returns ctx.Err() on cancellation. The engines
// have no internal preemption points, so an abandoned computation runs to
// completion in the background (its engine-pool cache work is not lost).
func withinCtx[T any](ctx context.Context, f func() (T, error)) (T, error) {
	if ctx.Done() == nil {
		return f()
	}
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := f()
		ch <- outcome{v, err}
	}()
	select {
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	case o := <-ch:
		return o.v, o.err
	}
}

// SolvabilityReport is the full model analysis of cmd/solvability: the
// Coulouma-Godard-Peters machinery plus the strongest contraction-rate
// lower bound the paper proves for the model.
type SolvabilityReport struct {
	Model       string `json:"model"`
	Description string `json:"description"`
	N           int    `json:"n"`
	Graphs      int    `json:"graphs"`

	Rooted   bool `json:"rooted"`
	NonSplit bool `json:"non_split"`

	AlphaDiameter int  `json:"alpha_diameter"`
	AlphaFinite   bool `json:"alpha_finite"`

	BetaClasses        [][]int `json:"beta_classes"`
	SourceIncompatible []bool  `json:"source_incompatible"`

	ExactConsensusSolvable bool `json:"exact_consensus_solvable"`

	BoundRate    float64 `json:"bound_rate"`
	BoundTheorem string  `json:"bound_theorem"`
	BoundDetail  string  `json:"bound_detail"`

	// GraphNames and GraphRoots render every member graph and its root
	// set.
	GraphNames []string `json:"graph_names"`
	GraphRoots [][]int  `json:"graph_roots"`
}

// Solvability analyzes a model spec. The analysis is pure computation;
// ctx bounds it for serving (see withinCtx for the cancellation
// semantics). Model construction happens inside the budget too — for
// enumerated families (rooted:N, na:N,F) it can dominate.
func Solvability(ctx context.Context, modelSpec string, opts ...QueryOption) (*SolvabilityReport, error) {
	cfg := applyQueryOptions(opts)
	return withinCtx(ctx, func() (*SolvabilityReport, error) {
		m, err := cfg.lib.models().New(modelSpec)
		if err != nil {
			return nil, err
		}
		r := &SolvabilityReport{
			Model:       modelSpec,
			Description: m.String(),
			N:           m.N(),
			Graphs:      m.Size(),
			Rooted:      m.IsRooted(),
			NonSplit:    m.IsNonSplit(),
		}
		r.AlphaDiameter, r.AlphaFinite = m.AlphaDiameter()
		r.BetaClasses = m.BetaClasses()
		r.SourceIncompatible = make([]bool, len(r.BetaClasses))
		for i, class := range r.BetaClasses {
			r.SourceIncompatible[i] = m.SourceIncompatible(class)
		}
		r.ExactConsensusSolvable = m.ExactConsensusSolvable()
		// ContractionLowerBound re-derives parts of the analysis above (the
		// model layer keeps its bound derivation self-contained); the server's
		// response cache absorbs the cost for repeated queries.
		b := m.ContractionLowerBound()
		r.BoundRate, r.BoundTheorem, r.BoundDetail = b.Rate, b.Theorem, b.Detail
		r.GraphNames = make([]string, m.Size())
		r.GraphRoots = make([][]int, m.Size())
		for i, g := range m.Graphs() {
			r.GraphNames[i] = g.String()
			r.GraphRoots[i] = graph.SetToNodes(g.RootsSet())
		}
		return r, nil
	})
}

// queryConfig collects query options.
type queryConfig struct {
	lib *Library
}

// QueryOption configures the query helpers.
type QueryOption func(*queryConfig)

// QueryLibrary resolves the query's specs against lib.
func QueryLibrary(lib *Library) QueryOption {
	return func(c *queryConfig) { c.lib = lib }
}

func applyQueryOptions(opts []QueryOption) queryConfig {
	var cfg queryConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// ValencyRequest asks for certified valency bounds of an initial
// configuration under a model.
type ValencyRequest struct {
	Model     string    `json:"model"`
	Algorithm string    `json:"algorithm,omitempty"`
	Inputs    []float64 `json:"inputs,omitempty"`
	Depth     int       `json:"depth,omitempty"`
}

// ValencyReport carries the engine's certified interval bounds on the
// valency Y*(C) of the requested configuration.
type ValencyReport struct {
	Model     string `json:"model"`
	Algorithm string `json:"algorithm"`
	Depth     int    `json:"depth"`
	// Inner is spanned by genuinely reachable limits; its diameter is a
	// sound lower bound on δ(C).
	Inner      Interval `json:"inner"`
	DeltaLower float64  `json:"delta_lower"`
	// Outer provably contains Y*(C) (convex combination algorithms only).
	Outer      *Interval `json:"outer,omitempty"`
	DeltaUpper float64   `json:"delta_upper,omitempty"`
	// CacheHitRate is the shared engine's transposition-table hit rate
	// after this query — the cross-query reuse the engine pool provides.
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// ValencyBounds computes certified inner (and, for convex combination
// algorithms, outer) valency bounds for the initial configuration of the
// requested algorithm on the model, exploring to the requested depth
// (DefaultDepth when 0) on the shared per-model engine.
func ValencyBounds(ctx context.Context, req ValencyRequest, opts ...QueryOption) (*ValencyReport, error) {
	cfg := applyQueryOptions(opts)
	// Model construction can dominate for enumerated families; keep it
	// inside the cancellation scope like the exploration itself.
	m, err := withinCtx(ctx, func() (*model.Model, error) { return cfg.lib.models().New(req.Model) })
	if err != nil {
		return nil, err
	}
	algSpec := req.Algorithm
	if algSpec == "" {
		algSpec = "midpoint"
	}
	alg, err := cfg.lib.algorithms().New(algSpec, m.N())
	if err != nil {
		return nil, err
	}
	inputs := req.Inputs
	if inputs == nil {
		inputs = SpreadInputs(m.N())
	} else if len(inputs) != m.N() {
		return nil, fmt.Errorf("consensus: got %d inputs for %d agents", len(inputs), m.N())
	}
	depth := req.Depth
	if depth == 0 {
		depth = DefaultDepth
	}
	if depth < 0 {
		return nil, fmt.Errorf("consensus: negative valency depth %d", depth)
	}
	eng := sharedEngine(cfg.lib.models(), req.Model, alg.Name(), m, depth, alg.Convex())
	return withinCtx(ctx, func() (*ValencyReport, error) {
		c := core.NewConfig(alg, inputs)
		inner := eng.Inner(c)
		r := &ValencyReport{
			Model:      req.Model,
			Algorithm:  alg.Name(),
			Depth:      depth,
			Inner:      Interval{Lo: inner.Lo, Hi: inner.Hi},
			DeltaLower: inner.Diameter(),
		}
		if alg.Convex() {
			outer := eng.Outer(c)
			r.Outer = &Interval{Lo: outer.Lo, Hi: outer.Hi}
			r.DeltaUpper = outer.Diameter()
		}
		r.CacheHitRate = eng.Stats().HitRate()
		return r, nil
	})
}

// DecisionRequest asks for an approximate-consensus decision-time sweep:
// run the decider for each tolerance and report its decision round next
// to the named theorem's lower bound.
type DecisionRequest struct {
	Model     string    `json:"model"`
	Algorithm string    `json:"algorithm"`
	Adversary string    `json:"adversary,omitempty"` // default "fixed:0"
	Inputs    []float64 `json:"inputs,omitempty"`
	// Contraction is the per-round contraction factor the algorithm
	// guarantees in the model (drives the decision-round formula).
	Contraction float64 `json:"contraction"`
	// Delta upper-bounds the initial diameter (default 1).
	Delta float64   `json:"delta,omitempty"`
	Eps   []float64 `json:"eps"`
	// Theorem selects the lower bound: "T8", "T9", "T10", "T11", or ""
	// for none.
	Theorem string `json:"theorem,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
}

// DecisionPoint is one (ε, decision time) sample.
type DecisionPoint struct {
	Eps        float64 `json:"eps"`
	LowerBound float64 `json:"lower_bound"`
	Rounds     int     `json:"rounds"`
	Spread     float64 `json:"spread"`
	OK         bool    `json:"ok"`
}

// DecisionSweep runs the optimal decider over the requested tolerances,
// checking ctx between tolerance points.
func DecisionSweep(ctx context.Context, req DecisionRequest, opts ...QueryOption) ([]DecisionPoint, error) {
	cfg := applyQueryOptions(opts)
	m, err := withinCtx(ctx, func() (*model.Model, error) { return cfg.lib.models().New(req.Model) })
	if err != nil {
		return nil, err
	}
	alg, err := cfg.lib.algorithms().New(req.Algorithm, m.N())
	if err != nil {
		return nil, err
	}
	if !(req.Contraction > 0) || req.Contraction >= 1 {
		return nil, fmt.Errorf("consensus: decision sweep needs a contraction factor in (0,1), got %v", req.Contraction)
	}
	delta := req.Delta
	if delta == 0 {
		delta = 1
	}
	inputs := req.Inputs
	if inputs == nil {
		inputs = SpreadInputs(m.N())
	} else if len(inputs) != m.N() {
		return nil, fmt.Errorf("consensus: got %d inputs for %d agents", len(inputs), m.N())
	}
	if got := core.Diameter(inputs); got > delta {
		return nil, fmt.Errorf("consensus: initial diameter %v exceeds declared delta %v", got, delta)
	}
	if len(req.Eps) == 0 {
		return nil, fmt.Errorf("consensus: decision sweep needs at least one tolerance")
	}
	for _, eps := range req.Eps {
		if eps <= 0 || eps > delta {
			return nil, fmt.Errorf("consensus: tolerance %v outside (0, delta=%v]", eps, delta)
		}
	}

	lower, err := theoremLowerBound(req.Theorem, m, delta)
	if err != nil {
		return nil, err
	}

	advSpec := req.Adversary
	if advSpec == "" {
		advSpec = "fixed:0"
	}
	seed := req.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	newSrc := func() (core.PatternSource, error) {
		return cfg.lib.adversaries().New(advSpec, AdversaryEnv{
			Model: m, Algorithm: alg, N: m.N(), Seed: seed, Depth: DefaultDepth,
		})
	}
	src, err := newSrc()
	if err != nil {
		return nil, err
	}

	d := approx.Decider{Alg: alg, Contraction: req.Contraction}
	if points, ok, err := denseDecisionPoints(ctx, d, alg, inputs, src, delta, req.Eps, lower); ok {
		return points, err
	}

	points := make([]DecisionPoint, 0, len(req.Eps))
	for _, eps := range req.Eps {
		if err := ctx.Err(); err != nil {
			return points, err
		}
		src, err := newSrc()
		if err != nil {
			return points, err
		}
		res := d.Run(inputs, src, delta, eps)
		points = append(points, DecisionPoint{
			Eps:        eps,
			LowerBound: lower(eps),
			Rounds:     res.DecisionRound,
			Spread:     res.Spread,
			OK:         res.EpsAgreement && res.Validity,
		})
	}
	return points, nil
}

// denseDecisionPoints is the batch-plane decision sweep: the per-ε
// deciding runs of a sweep share one trajectory whenever the adversary
// is oblivious (fresh equal-seed sources replay the same graph
// sequence) and the algorithm steps densely, so the batch degenerates
// to one dense run sampled at every tolerance's decision round — the
// decisions of an r-round run are exactly the outputs at round r of the
// longer shared execution. Per-point numbers are bit-identical to the
// sequential per-ε path (the differential test pins this); ok is false
// when the request must take that path.
func denseDecisionPoints(ctx context.Context, d approx.Decider, alg core.Algorithm, inputs []float64, src core.PatternSource, delta float64, epss []float64, lower func(eps float64) float64) ([]DecisionPoint, bool, error) {
	da, denseOK := core.AsDense(alg)
	if !denseOK || !core.CurrentBackend().DenseEnabled() || !core.IsOblivious(src) {
		return nil, false, nil
	}
	rounds := make([]int, len(epss))
	maxRounds := 0
	for i, eps := range epss {
		rounds[i] = d.Rounds(delta, eps)
		if rounds[i] > maxRounds {
			maxRounds = rounds[i]
		}
	}
	br := core.NewBatchRunner(da, [][]float64{inputs})
	out := make([]float64, len(inputs))
	hullLo, hullHi := core.Hull(inputs)
	points := make([]DecisionPoint, len(epss))
	sample := func(t int) {
		for i, r := range rounds {
			if r != t {
				continue
			}
			br.Outputs(0, out)
			spread := core.Diameter(out)
			validity := true
			for _, v := range out {
				if v < hullLo-1e-9 || v > hullHi+1e-9 {
					validity = false
				}
			}
			points[i] = DecisionPoint{
				Eps:        epss[i],
				LowerBound: lower(epss[i]),
				Rounds:     r,
				Spread:     spread,
				OK:         spread <= epss[i]*(1+1e-9) && validity,
			}
		}
	}
	sample(0)
	done := ctx.Done()
	for t := 1; t <= maxRounds; t++ {
		if done != nil {
			select {
			case <-done:
				// Unlike the sequential path's completed prefix, the
				// shared trajectory fills points in decision-round
				// order; return none rather than fabricated zeros.
				return nil, true, ctx.Err()
			default:
			}
		}
		br.Step(src.Next(t, nil))
		sample(t)
	}
	return points, true, nil
}

// theoremLowerBound resolves a decision-time theorem name to its bound.
func theoremLowerBound(theorem string, m interface {
	N() int
	AlphaDiameter() (int, bool)
}, delta float64) (func(eps float64) float64, error) {
	switch theorem {
	case "":
		return func(float64) float64 { return 0 }, nil
	case "T8":
		return func(eps float64) float64 { return approx.Theorem8LowerBound(delta, eps) }, nil
	case "T9":
		return func(eps float64) float64 { return approx.Theorem9LowerBound(delta, eps) }, nil
	case "T10":
		n := m.N()
		return func(eps float64) float64 { return approx.Theorem10LowerBound(n, delta, eps) }, nil
	case "T11":
		d, finite := m.AlphaDiameter()
		if !finite {
			return nil, fmt.Errorf("consensus: T11 needs a finite alpha-diameter")
		}
		n := m.N()
		return func(eps float64) float64 { return approx.Theorem11LowerBound(d, n, delta, eps) }, nil
	default:
		return nil, fmt.Errorf("consensus: unknown decision-time theorem %q (want T8|T9|T10|T11)", theorem)
	}
}

// ExperimentInfo describes one registered paper-reproduction experiment.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Paper string `json:"paper"`
}

// Experiments lists the paper-reproduction registry (every Table 1 cell,
// figure, and decision-time theorem), sorted by ID.
func Experiments() []ExperimentInfo {
	all := exp.All()
	out := make([]ExperimentInfo, len(all))
	for i, e := range all {
		out[i] = ExperimentInfo{ID: e.ID, Title: e.Title, Paper: e.Paper}
	}
	return out
}

// ExperimentResult is one regenerated experiment table.
type ExperimentResult struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Paper  string     `json:"paper"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`

	tbl *exp.Table
}

// Render formats the result as the aligned monospace table cmd/paperbench
// prints.
func (r *ExperimentResult) Render() string { return r.tbl.Render() }

// CSV renders the result as comma-separated values.
func (r *ExperimentResult) CSV() string { return r.tbl.CSV() }

// RunExperiment regenerates one experiment by ID (see withinCtx for the
// cancellation semantics).
func RunExperiment(ctx context.Context, id string) (*ExperimentResult, error) {
	e, ok := exp.Find(id)
	if !ok {
		return nil, fmt.Errorf("consensus: unknown experiment %q; see Experiments()", id)
	}
	return withinCtx(ctx, func() (*ExperimentResult, error) {
		tbl := e.Run()
		return &ExperimentResult{
			ID:     tbl.ID,
			Title:  tbl.Title,
			Paper:  tbl.Paper,
			Header: tbl.Header,
			Rows:   tbl.Rows,
			Notes:  tbl.Notes,
			tbl:    tbl,
		}, nil
	})
}
