package distributed

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/consensus"
	"repro/internal/obs"
)

// DefaultMaxShardSpecs bounds the specs one shard request may carry.
// The coordinator's default shard size is far below it; the worker-side
// bound exists so a hostile or misconfigured coordinator cannot pin a
// worker with one giant shard.
const DefaultMaxShardSpecs = 1024

// WorkerOption configures a Worker.
type WorkerOption func(*workerConfig)

type workerConfig struct {
	lib           *consensus.Library
	cache         *consensus.SweepCache
	timeout       time.Duration
	maxShardSpecs int
	serverOpts    []consensus.ServerOption
	reg           *obs.Registry
}

// WorkerLibrary resolves every shard spec against lib.
func WorkerLibrary(lib *consensus.Library) WorkerOption {
	return func(c *workerConfig) { c.lib = lib }
}

// WorkerSweepCache uses the given sweep cache for shard execution (and
// the embedded server's sweep endpoint) instead of a fresh one.
func WorkerSweepCache(cache *consensus.SweepCache) WorkerOption {
	return func(c *workerConfig) { c.cache = cache }
}

// WorkerTimeout bounds each shard's computation (default 30s).
func WorkerTimeout(d time.Duration) WorkerOption {
	return func(c *workerConfig) { c.timeout = d }
}

// WorkerMaxShardSpecs bounds the specs accepted per shard request
// (default DefaultMaxShardSpecs).
func WorkerMaxShardSpecs(n int) WorkerOption {
	return func(c *workerConfig) { c.maxShardSpecs = n }
}

// WorkerObsRegistry registers the worker's shard counters — and the
// embedded server's request metrics — on r instead of a fresh
// registry. Always on; see CoordinatorObsRegistry.
func WorkerObsRegistry(r *obs.Registry) WorkerOption {
	return func(c *workerConfig) { c.reg = r }
}

// Worker is the worker-side handler: the full single-process
// consensus.Server surface (run, sweep, scenario, experiments, status,
// ...) plus the shard execution endpoint the coordinator fans out to:
//
//	POST /api/v1/shard    ShardRequest -> ShardResponse
//	GET  /api/v1/status   WorkerStatus (server caches + shard counters)
//
// Shards execute through the ordinary Sweep path against the worker's
// own fingerprint-keyed sweep cache, so the batch plane (tiling, plan
// caching, intra-step parallelism) is fully engaged per worker and a
// re-routed or re-submitted shard re-serves cached runs locally.
type Worker struct {
	mux     *http.ServeMux
	inner   *consensus.Server
	lib     *consensus.Library
	cache   *consensus.SweepCache
	timeout time.Duration
	maxSpec int

	// reg is shared with the embedded server, so the server's GET
	// /metrics (reached through the catch-all route) exposes the shard
	// counters alongside the request and cache series. Status() reads
	// the counters back from these instruments.
	reg *obs.Registry
	met *workerMetrics
}

// NewWorker builds the worker handler.
func NewWorker(opts ...WorkerOption) *Worker {
	cfg := workerConfig{timeout: 30 * time.Second, maxShardSpecs: DefaultMaxShardSpecs}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.cache == nil {
		cfg.cache = consensus.NewSweepCache()
	}
	if cfg.reg == nil {
		cfg.reg = obs.NewRegistry()
	}
	serverOpts := append([]consensus.ServerOption{
		consensus.ServerTimeout(cfg.timeout),
		consensus.ServerSweepCache(cfg.cache),
		consensus.ServerObsRegistry(cfg.reg),
	}, cfg.serverOpts...)
	if cfg.lib != nil {
		serverOpts = append(serverOpts, consensus.ServerLibrary(cfg.lib))
	}
	w := &Worker{
		inner:   consensus.NewServer(serverOpts...),
		lib:     cfg.lib,
		cache:   cfg.cache,
		timeout: cfg.timeout,
		maxSpec: cfg.maxShardSpecs,
		reg:     cfg.reg,
		met:     newWorkerMetrics(cfg.reg),
	}
	mux := http.NewServeMux()
	mux.Handle("/", w.inner)
	mux.HandleFunc("POST /api/v1/shard", w.handleShard)
	mux.HandleFunc("GET /api/v1/status", w.handleStatus)
	w.mux = mux
	return w
}

// ServeHTTP implements http.Handler.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) { w.mux.ServeHTTP(rw, r) }

// SweepCacheCounters returns the worker's sweep-cache accounting.
func (w *Worker) SweepCacheCounters() consensus.SweepCacheCounters { return w.cache.Counters() }

// Registry exposes the worker's always-on metrics registry (shared
// with the embedded server).
func (w *Worker) Registry() *obs.Registry { return w.reg }

func (w *Worker) handleShard(rw http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	if err := decodeBody(rw, r, &req); err != nil {
		w.met.shardErrors.Inc()
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	if len(req.Specs) == 0 {
		w.met.shardErrors.Inc()
		writeError(rw, http.StatusBadRequest, fmt.Errorf("distributed: shard needs at least one spec"))
		return
	}
	if len(req.Specs) > w.maxSpec {
		w.met.shardErrors.Inc()
		writeError(rw, http.StatusBadRequest,
			fmt.Errorf("distributed: shard carries %d specs, worker cap is %d", len(req.Specs), w.maxSpec))
		return
	}
	for _, spec := range req.Specs {
		if err := consensus.CheckServedRounds(spec.Rounds); err != nil {
			w.met.shardErrors.Inc()
			writeError(rw, http.StatusBadRequest, err)
			return
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), w.timeout)
	defer cancel()
	opts := []consensus.SweepOption{consensus.WithSweepCache(w.cache)}
	if w.lib != nil {
		opts = append(opts, consensus.SweepLibrary(w.lib))
	}
	if req.Workers > 0 {
		opts = append(opts, consensus.SweepWorkers(req.Workers))
	}
	results, err := consensus.Sweep(ctx, req.Specs, opts...)
	if err != nil {
		w.met.shardErrors.Inc()
		writeError(rw, statusOf(err), err)
		return
	}
	w.met.shards.Inc()
	w.met.shardSpecs.Add(uint64(len(req.Specs)))
	writeJSON(rw, http.StatusOK, ShardResponse{Shard: req.Shard, Results: results})
}

func (w *Worker) handleStatus(rw http.ResponseWriter, r *http.Request) {
	writeJSON(rw, http.StatusOK, WorkerStatus{
		StatusReport: w.inner.Status(),
		Shards:       w.met.shards.Value(),
		ShardSpecs:   w.met.shardSpecs.Value(),
		ShardErrors:  w.met.shardErrors.Value(),
	})
}
