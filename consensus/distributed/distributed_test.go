package distributed_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/consensus"
	"repro/consensus/distributed"
)

// mixedSpecs is the parity workload: fixed-graph models, per-run
// scenario schedules, a repeated spec, and a spec that fails to
// resolve.
func mixedSpecs() []consensus.RunSpec {
	return []consensus.RunSpec{
		{Model: "deaf:4", Algorithm: "midpoint", Adversary: "cycle", Rounds: 8},
		{Model: "deaf:6", Algorithm: "amortized", Adversary: "random", Rounds: 10, Seed: 3},
		{Scenario: "eventuallyrooted:5,2", Algorithm: "midpoint", Rounds: 10},
		{Model: "psi:5", Algorithm: "mean", Adversary: "cycle", Rounds: 6},
		{Model: "deaf:4", Algorithm: "midpoint", Adversary: "cycle", Rounds: 8}, // repeat of 0
		{Model: "deaf:4", Algorithm: "nonsense", Rounds: 4},                     // resolution error
		{Scenario: "partitionheal:6,2,4", Algorithm: "twothirds", Rounds: 9, Depth: 2},
	}
}

// parityProjection drops the transport-dependent Cached flag; everything
// else must match the single-process sweep bitwise.
type parityProjection struct {
	Index       int                   `json:"index"`
	Fingerprint string                `json:"fingerprint"`
	Summary     *consensus.RunSummary `json:"summary"`
	Err         string                `json:"error"`
}

func project(results []consensus.SweepResult) []byte {
	out := make([]parityProjection, len(results))
	for i, r := range results {
		out[i] = parityProjection{Index: r.Index, Fingerprint: r.Fingerprint, Summary: r.Summary, Err: r.Err}
	}
	b, err := json.Marshal(out)
	if err != nil {
		panic(err)
	}
	return b
}

// singleProcess runs the reference sweep with a fresh cache.
func singleProcess(t *testing.T, specs []consensus.RunSpec) []consensus.SweepResult {
	t.Helper()
	results, err := consensus.Sweep(context.Background(), specs,
		consensus.WithSweepCache(consensus.NewSweepCache()))
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// postSweep submits one distributed sweep and decodes the merged
// response.
func postSweep(t *testing.T, baseURL string, req distributed.SweepRequest) (*distributed.SweepResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/api/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp
	}
	var sr distributed.SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return &sr, resp
}

func getStatus(t *testing.T, baseURL string) distributed.CoordinatorStatus {
	t.Helper()
	resp, err := http.Get(baseURL + "/api/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st distributed.CoordinatorStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// startCluster wires an httptest coordinator to two in-process workers,
// optionally wrapping each worker's handler.
func startCluster(t *testing.T, wrap func(i int, h http.Handler) http.Handler, copts ...distributed.CoordinatorOption) (*httptest.Server, *distributed.Coordinator) {
	t.Helper()
	var urls []string
	for i := 0; i < 2; i++ {
		var h http.Handler = distributed.NewWorker(distributed.WorkerTimeout(time.Minute))
		if wrap != nil {
			h = wrap(i, h)
		}
		ws := httptest.NewServer(h)
		t.Cleanup(ws.Close)
		urls = append(urls, ws.URL)
	}
	coord := distributed.NewCoordinator(append([]distributed.CoordinatorOption{
		distributed.CoordinatorWorkers(urls...),
		distributed.CoordinatorHealthInterval(0),
		distributed.CoordinatorRetry(3, 5*time.Millisecond),
	}, copts...)...)
	t.Cleanup(coord.Close)
	ts := httptest.NewServer(coord)
	t.Cleanup(ts.Close)
	return ts, coord
}

func TestDistributedSweepMatchesSingleProcess(t *testing.T) {
	specs := mixedSpecs()
	reference := singleProcess(t, specs)
	want := project(reference)
	wantErrs := 0
	for _, r := range reference {
		if r.Err != "" {
			wantErrs++
		}
	}
	if wantErrs == 0 || wantErrs == len(specs) {
		t.Fatalf("workload should mix successes and errors, got %d/%d errors", wantErrs, len(specs))
	}

	ts, _ := startCluster(t, nil, distributed.CoordinatorShardSpecs(2))
	sr, _ := postSweep(t, ts.URL, distributed.SweepRequest{Specs: specs})
	if got := project(sr.Results); !bytes.Equal(got, want) {
		t.Errorf("distributed sweep diverges from single-process:\n got %s\nwant %s", got, want)
	}
	if sr.Stats.Specs != len(specs) || sr.Stats.Errors != wantErrs {
		t.Errorf("stats = %+v, want %d specs and %d errors", sr.Stats, len(specs), wantErrs)
	}

	st := getStatus(t, ts.URL)
	if st.SpecsServed != uint64(len(specs)) {
		t.Errorf("specs served = %d, want %d", st.SpecsServed, len(specs))
	}
	if st.SpecsFailed != uint64(wantErrs) {
		t.Errorf("specs failed = %d, want %d", st.SpecsFailed, wantErrs)
	}
}

func TestResubmitServesFromStore(t *testing.T) {
	specs := mixedSpecs()
	ts, _ := startCluster(t, nil, distributed.CoordinatorShardSpecs(3))

	first, _ := postSweep(t, ts.URL, distributed.SweepRequest{Specs: specs})
	st1 := getStatus(t, ts.URL)

	second, _ := postSweep(t, ts.URL, distributed.SweepRequest{Specs: specs})
	st2 := getStatus(t, ts.URL)

	if got, want := project(second.Results), project(first.Results); !bytes.Equal(got, want) {
		t.Errorf("resubmitted sweep diverges:\n got %s\nwant %s", got, want)
	}
	if st2.ShardsDispatched != st1.ShardsDispatched {
		t.Errorf("resubmission dispatched %d new shards, want 0", st2.ShardsDispatched-st1.ShardsDispatched)
	}
	// Every fingerprintable spec (all but the resolution errors) must be
	// a store hit the second time — 100% of the addressable set.
	addressable := 0
	for _, r := range first.Results {
		if r.Fingerprint != "" {
			addressable++
		}
	}
	if addressable == 0 {
		t.Fatal("no addressable specs in workload")
	}
	fromStore := st2.SpecsFromStore - st1.SpecsFromStore
	if fromStore != uint64(addressable) {
		t.Errorf("resubmission served %d specs from store, want %d", fromStore, addressable)
	}
	if second.Stats.StoreHits != addressable {
		t.Errorf("resubmit stats.StoreHits = %d, want %d", second.Stats.StoreHits, addressable)
	}
}

// flakyHandler injects 5xx on the shard endpoint for the first n
// requests, then behaves.
type flakyHandler struct {
	inner http.Handler
	mu    sync.Mutex
	n     int
	seen  int
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/api/v1/shard" {
		f.mu.Lock()
		f.seen++
		inject := f.n > 0
		if inject {
			f.n--
		}
		f.mu.Unlock()
		if inject {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintln(w, `{"error":"injected worker failure"}`)
			return
		}
	}
	f.inner.ServeHTTP(w, r)
}

func TestParityUnderInjectedWorkerFailures(t *testing.T) {
	specs := mixedSpecs()
	want := project(singleProcess(t, specs))

	var flakes []*flakyHandler
	ts, _ := startCluster(t, func(i int, h http.Handler) http.Handler {
		// Worker 0 fails its first two shard requests; retries reroute
		// to worker 1 (or back after backoff).
		f := &flakyHandler{inner: h}
		if i == 0 {
			f.n = 2
		}
		flakes = append(flakes, f)
		return f
	}, distributed.CoordinatorShardSpecs(2))

	sr, _ := postSweep(t, ts.URL, distributed.SweepRequest{Specs: specs})
	if got := project(sr.Results); !bytes.Equal(got, want) {
		t.Errorf("sweep under worker failures diverges:\n got %s\nwant %s", got, want)
	}
	st := getStatus(t, ts.URL)
	if flakes[0].seen > 0 && st.ShardRetries == 0 {
		t.Errorf("worker 0 saw %d shard requests with %d injected failures but no retries recorded",
			flakes[0].seen, 2)
	}
	if st.ShardFailures != 0 {
		t.Errorf("shard failures = %d, want 0 (retries should have absorbed the 5xx)", st.ShardFailures)
	}
}

func TestMalformedShardPayloads(t *testing.T) {
	w := distributed.NewWorker()
	ws := httptest.NewServer(w)
	defer ws.Close()

	post := func(body string) *http.Response {
		resp, err := http.Post(ws.URL+"/api/v1/shard", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	cases := []struct {
		name string
		body string
	}{
		{"garbage", `{"shard": `},
		{"unknown field", `{"shard":"x","specs":[{"model":"deaf:4"}],"bogus":1}`},
		{"no specs", `{"shard":"x","specs":[]}`},
		{"rounds over cap", fmt.Sprintf(`{"shard":"x","specs":[{"model":"deaf:4","rounds":%d}]}`, consensus.MaxServedRounds+1)},
	}
	for _, tc := range cases {
		if resp := post(tc.body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}

	// The error must be JSON with an error field, and the worker must
	// still serve well-formed shards afterwards.
	resp := post(`{"shard":"ok","specs":[{"model":"deaf:4","algorithm":"midpoint","rounds":4}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("well-formed shard after malformed ones: status %d", resp.StatusCode)
	}
	var shard distributed.ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&shard); err != nil {
		t.Fatal(err)
	}
	if len(shard.Results) != 1 || shard.Results[0].Summary == nil {
		t.Errorf("shard response: %+v", shard)
	}
	if shard.Results[0].Fingerprint == "" {
		t.Error("shard result carries no fingerprint")
	}
}

// gatedHandler blocks shard requests until released.
type gatedHandler struct {
	inner   http.Handler
	gate    chan struct{}
	blocked chan struct{} // one token per request that reached the gate
}

func (g *gatedHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/api/v1/shard" {
		select {
		case g.blocked <- struct{}{}:
		default:
		}
		select {
		case <-g.gate:
		case <-r.Context().Done():
			return
		}
	}
	g.inner.ServeHTTP(w, r)
}

func TestBackpressureRejectsWith429(t *testing.T) {
	gate := make(chan struct{})
	g := &gatedHandler{gate: gate, blocked: make(chan struct{}, 16)}
	ts, _ := startCluster(t, func(i int, h http.Handler) http.Handler {
		g.inner = h
		return g
	}, distributed.CoordinatorQueueCapacity(1))
	// Both worker URLs share one gate handler; inner is the last worker,
	// which is fine — the gate is what matters.

	// Occupy the queue with a sweep that blocks on the gated worker.
	firstDone := make(chan *distributed.SweepResponse, 1)
	go func() {
		sr, _ := postSweep(t, ts.URL, distributed.SweepRequest{Specs: []consensus.RunSpec{
			{Model: "deaf:4", Algorithm: "midpoint", Adversary: "cycle", Rounds: 5},
		}})
		firstDone <- sr
	}()
	select {
	case <-g.blocked:
	case <-time.After(10 * time.Second):
		t.Fatal("first sweep never reached a worker")
	}

	// The queue (capacity 1) is now full: a second sweep must bounce
	// with 429 and a Retry-After hint, before any computation.
	sr, resp := postSweep(t, ts.URL, distributed.SweepRequest{Specs: []consensus.RunSpec{
		{Model: "deaf:6", Algorithm: "midpoint", Adversary: "cycle", Rounds: 5},
	}})
	if sr != nil || resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second sweep status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After header")
	}

	close(gate)
	select {
	case sr := <-firstDone:
		if sr == nil {
			t.Fatal("first sweep failed after gate release")
		}
		if sr.Results[0].Err != "" {
			t.Errorf("first sweep result: %s", sr.Results[0].Err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("first sweep never completed")
	}
	st := getStatus(t, ts.URL)
	if st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
	if st.QueueDepth != 0 {
		t.Errorf("queue depth = %d after drain, want 0", st.QueueDepth)
	}
}

// readSSE parses one SSE stream into (event, payload) pairs.
func readSSE(t *testing.T, r *bufio.Reader) []struct{ event, data string } {
	t.Helper()
	var events []struct{ event, data string }
	var cur struct{ event, data string }
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			break
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.event != "":
			events = append(events, cur)
			cur = struct{ event, data string }{}
		}
	}
	return events
}

func TestStreamingSweepDeliversAllResultsThenDone(t *testing.T) {
	specs := mixedSpecs()
	want := project(singleProcess(t, specs))

	// Worker 0 flakes once: the stream must still deliver every result.
	ts, _ := startCluster(t, func(i int, h http.Handler) http.Handler {
		f := &flakyHandler{inner: h}
		if i == 0 {
			f.n = 1
		}
		return f
	}, distributed.CoordinatorShardSpecs(2))

	body, _ := json.Marshal(distributed.SweepRequest{Specs: specs})
	resp, err := http.Post(ts.URL+"/api/v1/sweep/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	events := readSSE(t, bufio.NewReader(resp.Body))
	if len(events) == 0 || events[len(events)-1].event != "done" {
		t.Fatalf("stream did not end with done: %+v", events)
	}
	merged := make([]consensus.SweepResult, len(specs))
	seen := 0
	for _, ev := range events[:len(events)-1] {
		if ev.event != "results" {
			t.Fatalf("unexpected event %q", ev.event)
		}
		var re distributed.ResultsEvent
		if err := json.Unmarshal([]byte(ev.data), &re); err != nil {
			t.Fatal(err)
		}
		for _, r := range re.Results {
			merged[r.Index] = r
			seen++
		}
	}
	if seen != len(specs) {
		t.Fatalf("stream delivered %d results, want %d", seen, len(specs))
	}
	if got := project(merged); !bytes.Equal(got, want) {
		t.Errorf("streamed results diverge:\n got %s\nwant %s", got, want)
	}
	var stats distributed.SweepStats
	if err := json.Unmarshal([]byte(events[len(events)-1].data), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Specs != len(specs) {
		t.Errorf("done stats = %+v", stats)
	}
}

func TestClientDisconnectDuringStreamAborts(t *testing.T) {
	gate := make(chan struct{})
	g := &gatedHandler{gate: gate, blocked: make(chan struct{}, 16)}
	ts, coord := startCluster(t, func(i int, h http.Handler) http.Handler {
		g.inner = h
		return g
	})
	defer close(gate)

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(distributed.SweepRequest{Specs: []consensus.RunSpec{
		{Model: "deaf:4", Algorithm: "midpoint", Adversary: "cycle", Rounds: 5},
	}})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/api/v1/sweep/stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	respCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			_, err = bufio.NewReader(resp.Body).ReadString(0) // read until cut
			resp.Body.Close()
		}
		respCh <- err
	}()

	select {
	case <-g.blocked:
	case <-time.After(10 * time.Second):
		t.Fatal("stream sweep never reached a worker")
	}
	cancel()
	<-respCh

	// The dispatch context dies with the client: the queue must drain
	// without the gate ever opening.
	deadline := time.Now().Add(10 * time.Second)
	for coord.Status().QueueDepth != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d after client disconnect, want 0", coord.Status().QueueDepth)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestWorkerRegistrationEndpoint(t *testing.T) {
	w := httptest.NewServer(distributed.NewWorker())
	defer w.Close()
	coord := distributed.NewCoordinator(distributed.CoordinatorHealthInterval(0))
	defer coord.Close()
	ts := httptest.NewServer(coord)
	defer ts.Close()

	// No workers: a sweep needing compute is 503.
	_, resp := postSweep(t, ts.URL, distributed.SweepRequest{Specs: []consensus.RunSpec{
		{Model: "deaf:4", Algorithm: "midpoint", Adversary: "cycle", Rounds: 4},
	}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sweep without workers: status %d, want 503", resp.StatusCode)
	}

	reg, err := http.Post(ts.URL+"/api/v1/workers", "application/json",
		strings.NewReader(fmt.Sprintf(`{"url":%q}`, w.URL)))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Body.Close()
	var rr distributed.RegisterResponse
	if err := json.NewDecoder(reg.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Healthy || rr.Workers != 1 {
		t.Fatalf("registration: %+v", rr)
	}

	sr, _ := postSweep(t, ts.URL, distributed.SweepRequest{Specs: []consensus.RunSpec{
		{Model: "deaf:4", Algorithm: "midpoint", Adversary: "cycle", Rounds: 4},
	}})
	if sr == nil || sr.Results[0].Summary == nil {
		t.Fatal("sweep after registration failed")
	}

	bad, err := http.Post(ts.URL+"/api/v1/workers", "application/json",
		strings.NewReader(`{"url":"not a url"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad registration URL: status %d, want 400", bad.StatusCode)
	}
}

func TestLocalClusterAndReplay(t *testing.T) {
	lc, err := distributed.StartLocal(2,
		[]distributed.CoordinatorOption{distributed.CoordinatorHealthInterval(0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	entries := distributed.SyntheticStream(distributed.SyntheticOptions{
		Requests: 6, SpecsPerRequest: 3, RepeatFraction: 0.5, IntervalMS: 1, Seed: 7,
	})
	// Determinism: the same options regenerate the same stream.
	again := distributed.SyntheticStream(distributed.SyntheticOptions{
		Requests: 6, SpecsPerRequest: 3, RepeatFraction: 0.5, IntervalMS: 1, Seed: 7,
	})
	a, _ := json.Marshal(entries)
	b, _ := json.Marshal(again)
	if !bytes.Equal(a, b) {
		t.Fatal("synthetic stream is not deterministic")
	}
	// Rounds in the synthetic palette are small but nonzero.
	for _, e := range entries {
		for _, s := range e.Request.Specs {
			if s.Rounds <= 0 {
				t.Fatalf("synthetic spec with no rounds: %+v", s)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := distributed.Replay(ctx, lc.BaseURL, entries, distributed.ReplayOptions{
		Speed: 100, Concurrency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("replay errors: %+v", rep)
	}
	if rep.Requests != 6 || rep.ReqPerSec <= 0 || rep.LatencyP99MS < rep.LatencyP50MS {
		t.Errorf("replay report: %+v", rep)
	}

	// JSONL round-trip.
	var buf bytes.Buffer
	if err := distributed.WriteStream(&buf, entries); err != nil {
		t.Fatal(err)
	}
	back, err := distributed.ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := json.Marshal(back)
	if !bytes.Equal(a, c) {
		t.Fatal("stream JSONL round-trip diverges")
	}
}

func TestWorkerStatusCounters(t *testing.T) {
	w := distributed.NewWorker()
	ws := httptest.NewServer(w)
	defer ws.Close()

	body := `{"shard":"s1","specs":[{"model":"deaf:4","algorithm":"midpoint","adversary":"cycle","rounds":4}]}`
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ws.URL+"/api/v1/shard", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ws.URL + "/api/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st distributed.WorkerStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 || st.ShardSpecs != 2 {
		t.Errorf("worker shard counters: %+v", st)
	}
	// The repeated spec is a sweep-cache hit on the second shard.
	if st.SweepCache.Hits == 0 {
		t.Errorf("worker sweep cache recorded no hits: %+v", st.SweepCache)
	}
}
