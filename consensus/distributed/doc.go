// Package distributed shards the consensus query service across
// processes: a Coordinator splits sweep and scenario-grid requests into
// fingerprint-keyed shards, fans them out over HTTP to Worker processes
// (cmd/reprod -worker), streams partial results back to the client as
// shards complete, and merges through a content-addressed result store —
// so a re-submitted spec is a store hit anywhere in the fleet, not a
// recompute.
//
// The protocol rests on the repository's existing identities: every
// RunSpec resolves to a canonical content fingerprint (the hex SHA-256
// of the session's registry-independent configuration key, which embeds
// the schedule trace fingerprint for scenario runs), and two sessions
// with equal fingerprints produce bit-identical results on any backend,
// any worker, any machine running the same build. That makes the merge
// trivial — results are position-independent values addressed by
// fingerprint — and makes distributed execution differentially testable
// against the single-process Sweep.
//
// Topology:
//
//	client ──POST /api/v1/sweep (or /sweep/stream, SSE)──▶ Coordinator
//	                                                      │  store (content-addressed)
//	                                                      │  bounded shard queue (429 + Retry-After past capacity)
//	                                     ┌────────────────┼────────────────┐
//	                              POST /api/v1/shard      │ rendezvous-hashed by fingerprint,
//	                                     ▼                ▼ retried with backoff, rerouted on failure
//	                                  Worker 1  ...    Worker N   (reprod -worker: the full single-process
//	                                                               Server surface + the shard endpoint)
//
// Workers register themselves (POST /api/v1/workers, reprod -announce)
// or are pinned at startup; the coordinator health-checks them and
// routes around failures. GET /api/v1/status on either side reports
// queue depth, per-worker in-flight counts, and cache hit rates.
package distributed
