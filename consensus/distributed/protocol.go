package distributed

import (
	"repro/consensus"
)

// This file pins the coordinator/worker wire protocol. Everything is
// JSON over HTTP; the result payloads are the same consensus.SweepResult
// values the single-process /api/v1/sweep returns, so a client (and the
// CI parity gate) can diff the two paths byte for byte after dropping
// the transport-dependent Cached flag.

// SweepRequest is the body of the coordinator's POST /api/v1/sweep and
// POST /api/v1/sweep/stream — the same shape as the single-process sweep
// endpoint. Workers, when positive, bounds each worker's sweep pool.
type SweepRequest struct {
	Specs   []consensus.RunSpec `json:"specs"`
	Workers int                 `json:"workers,omitempty"`
}

// SweepStats summarizes one distributed sweep: how the specs were
// served. It rides the merged response and the final SSE "done" event.
type SweepStats struct {
	Specs     int   `json:"specs"`
	StoreHits int   `json:"store_hits"`
	Computed  int   `json:"computed"`
	Errors    int   `json:"errors"`
	Shards    int   `json:"shards"`
	ElapsedMS int64 `json:"elapsed_ms"`
}

// SweepResponse is the merged (non-streaming) distributed sweep payload:
// one result per spec in input order, plus the serving stats.
type SweepResponse struct {
	Results []consensus.SweepResult `json:"results"`
	Stats   SweepStats              `json:"stats"`
}

// ResultsEvent is the payload of one SSE "results" event: the results of
// one completed shard (or the request's store hits and resolution
// errors, emitted first), indexed by the submitted spec order.
type ResultsEvent struct {
	Results []consensus.SweepResult `json:"results"`
}

// ShardRequest is the body of the worker's POST /api/v1/shard: one
// fingerprint-keyed slice of a distributed sweep. Spec order is the
// shard's own; the coordinator owns the mapping back to request indices.
type ShardRequest struct {
	// Shard names the shard (derived from its specs' fingerprints), for
	// logs and tracing.
	Shard   string              `json:"shard"`
	Specs   []consensus.RunSpec `json:"specs"`
	Workers int                 `json:"workers,omitempty"`
}

// ShardResponse is the worker's answer: one result per shard spec, in
// shard order, fingerprints included (the coordinator cross-checks them
// against its own before feeding the store).
type ShardResponse struct {
	Shard   string                  `json:"shard"`
	Results []consensus.SweepResult `json:"results"`
}

// RegisterRequest is the body of the coordinator's POST
// /api/v1/workers: a worker announcing its base URL (reprod -announce).
type RegisterRequest struct {
	URL string `json:"url"`
}

// RegisterResponse acknowledges a registration with the result of the
// immediate health probe.
type RegisterResponse struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Workers int    `json:"workers"`
}

// WorkerInfo is one worker's row in the coordinator status report.
type WorkerInfo struct {
	URL         string `json:"url"`
	Healthy     bool   `json:"healthy"`
	InFlight    int    `json:"in_flight"`
	ShardsDone  uint64 `json:"shards_done"`
	ShardErrors uint64 `json:"shard_errors"`
}

// CoordinatorStatus is the coordinator's GET /api/v1/status payload:
// queue occupancy, per-worker in-flight counts, the content-addressed
// store's accounting, and dispatch counters. SpecsFromStore against
// SpecsServed (and ShardsDispatched across submissions) is how the CI
// smoke job verifies that a re-submitted sweep recomputes nothing.
type CoordinatorStatus struct {
	Workers       []WorkerInfo `json:"workers"`
	QueueDepth    int          `json:"queue_depth"`
	QueueCapacity int          `json:"queue_capacity"`
	InFlight      int          `json:"in_flight"`

	Store        consensus.SweepCacheCounters `json:"store"`
	StoreHitRate float64                      `json:"store_hit_rate"`

	Sweeps           uint64 `json:"sweeps"`
	SpecsServed      uint64 `json:"specs_served"`
	SpecsFromStore   uint64 `json:"specs_from_store"`
	SpecsComputed    uint64 `json:"specs_computed"`
	SpecsFailed      uint64 `json:"specs_failed"`
	ShardsDispatched uint64 `json:"shards_dispatched"`
	ShardRetries     uint64 `json:"shard_retries"`
	ShardFailures    uint64 `json:"shard_failures"`
	Rejected         uint64 `json:"rejected"`
	// FingerprintMismatches counts shard results whose worker-computed
	// fingerprint disagreed with the coordinator's — zero unless the
	// fleet is running mixed builds; mismatched results are passed
	// through but never stored.
	FingerprintMismatches uint64 `json:"fingerprint_mismatches"`
}

// WorkerStatus is the worker's GET /api/v1/status payload: the full
// single-process cache report plus the shard endpoint's counters.
type WorkerStatus struct {
	consensus.StatusReport
	Shards      uint64 `json:"shards"`
	ShardSpecs  uint64 `json:"shard_specs"`
	ShardErrors uint64 `json:"shard_errors"`
}
