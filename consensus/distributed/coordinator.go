package distributed

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/consensus"
	"repro/internal/obs"
)

// Coordinator defaults. Shards are deliberately small relative to the
// batch tile (DefaultSweepBatch): the coordinator's unit of retry and
// rerouting is the shard, and a small shard bounds the work lost when a
// worker dies mid-sweep.
const (
	DefaultShardSpecs     = 16
	DefaultQueueCapacity  = 64
	DefaultWorkerInflight = 4
	DefaultShardAttempts  = 3
	DefaultRetryBase      = 200 * time.Millisecond
	DefaultShardTimeout   = 60 * time.Second
	DefaultHealthInterval = 5 * time.Second

	// MaxSweepSpecs bounds one distributed sweep request.
	MaxSweepSpecs = 4096

	// probeTimeout bounds one worker health probe.
	probeTimeout = 2 * time.Second

	// fpMemoCap bounds the canonical-spec -> fingerprint memo. The memo
	// is reset, not evicted, past capacity: fingerprinting is cheap for
	// everything but long scenarios, and those re-memoize on first use.
	fpMemoCap = 8192
)

// errNoWorkers rejects dispatch when the fleet is empty.
var errNoWorkers = errors.New("distributed: no workers registered")

// BusyError reports a sweep rejected by backpressure: admitting its
// shards would overflow the bounded queue. The HTTP surface maps it to
// 429 with a Retry-After header.
type BusyError struct {
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("distributed: shard queue full, retry after %s", e.RetryAfter)
}

// CoordinatorOption configures a Coordinator.
type CoordinatorOption func(*coordConfig)

type coordConfig struct {
	lib            *consensus.Library
	store          *Store
	storeCapacity  int
	workerURLs     []string
	shardSpecs     int
	queueCap       int
	workerInflight int
	attempts       int
	retryBase      time.Duration
	shardTimeout   time.Duration
	healthInterval time.Duration
	client         *http.Client
	reg            *obs.Registry
	logger         *slog.Logger
}

// CoordinatorLibrary fingerprints every spec against lib. Workers must
// run the same registry contents for fingerprints to agree.
func CoordinatorLibrary(lib *consensus.Library) CoordinatorOption {
	return func(c *coordConfig) { c.lib = lib }
}

// CoordinatorStore uses the given content-addressed store.
func CoordinatorStore(s *Store) CoordinatorOption {
	return func(c *coordConfig) { c.store = s }
}

// CoordinatorStoreCapacity bounds a store built by the coordinator
// itself (ignored when CoordinatorStore is given).
func CoordinatorStoreCapacity(n int) CoordinatorOption {
	return func(c *coordConfig) { c.storeCapacity = n }
}

// CoordinatorWorkers pins worker base URLs at construction; more can
// register later via POST /api/v1/workers.
func CoordinatorWorkers(urls ...string) CoordinatorOption {
	return func(c *coordConfig) { c.workerURLs = append(c.workerURLs, urls...) }
}

// CoordinatorShardSpecs caps specs per shard (default DefaultShardSpecs).
func CoordinatorShardSpecs(n int) CoordinatorOption {
	return func(c *coordConfig) { c.shardSpecs = n }
}

// CoordinatorQueueCapacity bounds admitted-but-unfinished shards across
// all requests (default DefaultQueueCapacity). A request whose shards
// would overflow the bound is rejected with BusyError — except when the
// queue is empty, which always admits, so one oversized request cannot
// deadlock itself.
func CoordinatorQueueCapacity(n int) CoordinatorOption {
	return func(c *coordConfig) { c.queueCap = n }
}

// CoordinatorWorkerInflight caps concurrent shards per worker
// (default DefaultWorkerInflight).
func CoordinatorWorkerInflight(n int) CoordinatorOption {
	return func(c *coordConfig) { c.workerInflight = n }
}

// CoordinatorRetry sets the attempts per shard and the base backoff
// (doubled each retry). attempts includes the first try.
func CoordinatorRetry(attempts int, base time.Duration) CoordinatorOption {
	return func(c *coordConfig) { c.attempts, c.retryBase = attempts, base }
}

// CoordinatorShardTimeout bounds one shard round-trip (default
// DefaultShardTimeout); a timed-out attempt is retried like a 5xx.
func CoordinatorShardTimeout(d time.Duration) CoordinatorOption {
	return func(c *coordConfig) { c.shardTimeout = d }
}

// CoordinatorHealthInterval sets the background health-probe period
// (default DefaultHealthInterval; <= 0 disables the loop — probes then
// happen only at registration).
func CoordinatorHealthInterval(d time.Duration) CoordinatorOption {
	return func(c *coordConfig) { c.healthInterval = d }
}

// CoordinatorClient sets the HTTP client used for shards and probes.
func CoordinatorClient(cl *http.Client) CoordinatorOption {
	return func(c *coordConfig) { c.client = cl }
}

// CoordinatorObsRegistry registers the coordinator's metrics on r
// instead of a fresh registry. The coordinator registry is always on
// (it backs /api/v1/status), so this is for embedding several
// components under one scrape, not for disabling.
func CoordinatorObsRegistry(r *obs.Registry) CoordinatorOption {
	return func(c *coordConfig) { c.reg = r }
}

// CoordinatorLogger emits structured dispatch logs (sweep admitted,
// shard dispatched/retried/failed) to log. The sweep and shard fields
// carry the span IDs exported at /api/v1/spans. Nil (the default) is
// silent.
func CoordinatorLogger(log *slog.Logger) CoordinatorOption {
	return func(c *coordConfig) { c.logger = log }
}

// workerState is the coordinator's view of one worker.
type workerState struct {
	url         string
	sem         chan struct{} // in-flight shard tokens
	healthy     atomic.Bool
	inFlight    atomic.Int64
	shardsDone  atomic.Uint64
	shardErrors atomic.Uint64
}

type fpEntry struct {
	fp  string
	err error
}

// Coordinator fans distributed sweeps out to a worker fleet. It is an
// http.Handler:
//
//	GET  /healthz               liveness
//	GET  /api/v1/status         CoordinatorStatus
//	POST /api/v1/workers        RegisterRequest -> RegisterResponse
//	POST /api/v1/sweep          SweepRequest -> SweepResponse (merged)
//	POST /api/v1/sweep/stream   SweepRequest -> SSE "results" events + "done"
type Coordinator struct {
	mux    *http.ServeMux
	lib    *consensus.Library
	store  *Store
	client *http.Client

	shardSpecs     int
	queueCap       int
	workerInflight int
	attempts       int
	retryBase      time.Duration
	shardTimeout   time.Duration
	healthInterval time.Duration

	mu       sync.Mutex
	workers  []*workerState
	admitted int // shards admitted and not yet finished

	fpMu   sync.Mutex
	fpMemo map[string]fpEntry

	// reg/met are the single source of truth for the coordinator's
	// accounting: Status() reads these instruments back, so the
	// /api/v1/status JSON and the /metrics exposition cannot drift.
	reg    *obs.Registry
	met    *coordMetrics
	tracer *obs.Tracer
	log    *slog.Logger

	stop      chan struct{}
	closeOnce sync.Once
}

// NewCoordinator builds a coordinator. Call Close when done to stop the
// health loop.
func NewCoordinator(opts ...CoordinatorOption) *Coordinator {
	cfg := coordConfig{
		shardSpecs:     DefaultShardSpecs,
		queueCap:       DefaultQueueCapacity,
		workerInflight: DefaultWorkerInflight,
		attempts:       DefaultShardAttempts,
		retryBase:      DefaultRetryBase,
		shardTimeout:   DefaultShardTimeout,
		healthInterval: DefaultHealthInterval,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.store == nil {
		cfg.store = NewStore(cfg.storeCapacity)
	}
	if cfg.client == nil {
		cfg.client = &http.Client{}
	}
	if cfg.shardSpecs < 1 {
		cfg.shardSpecs = 1
	}
	if cfg.queueCap < 1 {
		cfg.queueCap = 1
	}
	if cfg.workerInflight < 1 {
		cfg.workerInflight = 1
	}
	if cfg.attempts < 1 {
		cfg.attempts = 1
	}
	if cfg.reg == nil {
		cfg.reg = obs.NewRegistry()
	}
	c := &Coordinator{
		lib:            cfg.lib,
		store:          cfg.store,
		client:         cfg.client,
		shardSpecs:     cfg.shardSpecs,
		queueCap:       cfg.queueCap,
		workerInflight: cfg.workerInflight,
		attempts:       cfg.attempts,
		retryBase:      cfg.retryBase,
		shardTimeout:   cfg.shardTimeout,
		healthInterval: cfg.healthInterval,
		fpMemo:         make(map[string]fpEntry),
		reg:            cfg.reg,
		met:            newCoordMetrics(cfg.reg),
		tracer:         obs.NewTracer(coordTracerCapacity),
		log:            cfg.logger,
		stop:           make(chan struct{}),
	}
	c.registerCoordGauges()
	for _, u := range cfg.workerURLs {
		c.AddWorker(u)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /api/v1/status", c.handleStatus)
	mux.HandleFunc("GET /api/v1/spans", c.handleSpans)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("POST /api/v1/workers", c.handleRegister)
	mux.HandleFunc("POST /api/v1/sweep", c.handleSweep)
	mux.HandleFunc("POST /api/v1/sweep/stream", c.handleSweepStream)
	c.mux = mux
	if c.healthInterval > 0 {
		go c.healthLoop()
	}
	return c
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// Close stops the background health loop. In-flight sweeps finish.
func (c *Coordinator) Close() { c.closeOnce.Do(func() { close(c.stop) }) }

// ResultStore exposes the content-addressed store (shared with tests
// and the bench harness).
func (c *Coordinator) ResultStore() *Store { return c.store }

// Registry exposes the coordinator's always-on metrics registry.
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

// Tracer exposes the coordinator's span ring (also served at
// GET /api/v1/spans).
func (c *Coordinator) Tracer() *obs.Tracer { return c.tracer }

// AddWorker registers a worker base URL (idempotent) and probes it
// synchronously, returning its health.
func (c *Coordinator) AddWorker(rawURL string) (bool, error) {
	u, err := url.Parse(rawURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return false, fmt.Errorf("distributed: worker URL must be absolute http(s): %q", rawURL)
	}
	clean := strings.TrimRight(u.String(), "/")
	c.mu.Lock()
	for _, w := range c.workers {
		if w.url == clean {
			c.mu.Unlock()
			return c.probe(w), nil
		}
	}
	ws := &workerState{url: clean, sem: make(chan struct{}, c.workerInflight)}
	c.workers = append(c.workers, ws)
	c.mu.Unlock()
	return c.probe(ws), nil
}

// WorkerCount returns the registered worker count.
func (c *Coordinator) WorkerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

func (c *Coordinator) probe(w *workerState) bool {
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/healthz", nil)
	if err == nil {
		if resp, rerr := c.client.Do(req); rerr == nil {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	w.healthy.Store(ok)
	return ok
}

func (c *Coordinator) healthLoop() {
	t := time.NewTicker(c.healthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.mu.Lock()
			ws := append([]*workerState(nil), c.workers...)
			c.mu.Unlock()
			for _, w := range ws {
				c.probe(w)
			}
		}
	}
}

// Status snapshots the coordinator's accounting. Every number is read
// back from the obs registry's instruments — the same instruments the
// Prometheus exposition scrapes — so the two surfaces agree by
// construction.
func (c *Coordinator) Status() CoordinatorStatus {
	c.mu.Lock()
	ws := append([]*workerState(nil), c.workers...)
	depth := c.admitted
	c.mu.Unlock()
	st := CoordinatorStatus{
		Workers:               []WorkerInfo{},
		QueueDepth:            depth,
		QueueCapacity:         c.queueCap,
		Store:                 c.store.Counters(),
		Sweeps:                c.met.sweeps.Value(),
		SpecsServed:           c.met.specsServed.Value(),
		SpecsFromStore:        c.met.specsFromStore.Value(),
		SpecsComputed:         c.met.specsComputed.Value(),
		SpecsFailed:           c.met.specsFailed.Value(),
		ShardsDispatched:      c.met.shardsDispatched.Value(),
		ShardRetries:          c.met.shardRetries.Value(),
		ShardFailures:         c.met.shardFailures.Value(),
		Rejected:              c.met.rejected.Value(),
		FingerprintMismatches: c.met.fpMismatches.Value(),
	}
	st.StoreHitRate = st.Store.HitRate()
	for _, w := range ws {
		inf := int(w.inFlight.Load())
		st.InFlight += inf
		st.Workers = append(st.Workers, WorkerInfo{
			URL:         w.url,
			Healthy:     w.healthy.Load(),
			InFlight:    inf,
			ShardsDone:  w.shardsDone.Load(),
			ShardErrors: w.shardErrors.Load(),
		})
	}
	return st
}

// fingerprint computes (and memoizes) the content fingerprint of one
// spec. An empty fingerprint with nil error means the spec resolves but
// is not content-addressable; it is computed but never stored.
func (c *Coordinator) fingerprint(spec consensus.RunSpec) (string, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	k := string(raw)
	c.fpMu.Lock()
	if e, ok := c.fpMemo[k]; ok {
		c.fpMu.Unlock()
		return e.fp, e.err
	}
	c.fpMu.Unlock()
	var opts []consensus.Option
	if c.lib != nil {
		opts = append(opts, consensus.WithLibrary(c.lib))
	}
	fp, ferr := consensus.SpecFingerprint(spec, opts...)
	c.fpMu.Lock()
	if len(c.fpMemo) >= fpMemoCap {
		c.fpMemo = make(map[string]fpEntry, fpMemoCap)
	}
	c.fpMemo[k] = fpEntry{fp: fp, err: ferr}
	c.fpMu.Unlock()
	return fp, ferr
}

// pending is one spec awaiting shard dispatch.
type pending struct {
	index int
	spec  consensus.RunSpec
	fp    string // content fingerprint; "" for non-addressable specs
	key   string // routing key, never ""
}

// shard is the coordinator's unit of dispatch, retry, and rerouting.
type shard struct {
	id      string
	key     string // routing key of the first spec
	indices []int
	specs   []consensus.RunSpec
	fps     []string
	workers int
}

// scoreWorker is the rendezvous (highest-random-weight) score of a
// worker for a routing key: every coordinator ranks workers for a given
// key identically, so equal fingerprints land on the same worker —
// whose local sweep cache then serves repeats — and removing a worker
// only remaps the keys it owned.
func scoreWorker(workerURL, key string) uint64 {
	h := sha256.Sum256([]byte(workerURL + "\x00" + key))
	return binary.BigEndian.Uint64(h[:8])
}

// rankedFor snapshots the fleet sorted by descending rendezvous score.
func (c *Coordinator) rankedFor(key string) []*workerState {
	c.mu.Lock()
	ws := append([]*workerState(nil), c.workers...)
	c.mu.Unlock()
	sort.Slice(ws, func(i, j int) bool {
		si, sj := scoreWorker(ws[i].url, key), scoreWorker(ws[j].url, key)
		if si != sj {
			return si > sj
		}
		return ws[i].url < ws[j].url
	})
	return ws
}

// buildShards groups pending specs by preferred worker and chunks each
// group into shards of at most shardSpecs.
func (c *Coordinator) buildShards(pend []pending, workers int) []*shard {
	if len(pend) == 0 {
		return nil
	}
	groups := make(map[string][]pending)
	var order []string
	for _, p := range pend {
		ranked := c.rankedFor(p.key)
		pref := ""
		if len(ranked) > 0 {
			pref = ranked[0].url
			for _, w := range ranked {
				if w.healthy.Load() {
					pref = w.url
					break
				}
			}
		}
		if _, ok := groups[pref]; !ok {
			order = append(order, pref)
		}
		groups[pref] = append(groups[pref], p)
	}
	var shards []*shard
	for _, u := range order {
		g := groups[u]
		for len(g) > 0 {
			n := min(c.shardSpecs, len(g))
			chunk := g[:n]
			g = g[n:]
			sh := &shard{key: chunk[0].key, workers: workers}
			h := sha256.New()
			for _, p := range chunk {
				sh.indices = append(sh.indices, p.index)
				sh.specs = append(sh.specs, p.spec)
				sh.fps = append(sh.fps, p.fp)
				h.Write([]byte(p.key))
				h.Write([]byte{0})
			}
			sh.id = hex.EncodeToString(h.Sum(nil))[:16]
			shards = append(shards, sh)
		}
	}
	return shards
}

// runSweep executes one distributed sweep. emit, when non-nil, receives
// partial results as they land (the store hits and resolution errors
// first, then each shard as it completes); an emit error cancels
// dispatch. Admission control runs before the first emit, so BusyError
// and validation errors can still become plain HTTP status codes.
func (c *Coordinator) runSweep(ctx context.Context, req SweepRequest, emit func(ResultsEvent) error) (*SweepResponse, error) {
	start := time.Now()
	if len(req.Specs) == 0 {
		return nil, fmt.Errorf("distributed: sweep needs at least one spec")
	}
	if len(req.Specs) > MaxSweepSpecs {
		return nil, fmt.Errorf("distributed: sweep carries %d specs, cap is %d", len(req.Specs), MaxSweepSpecs)
	}
	for _, spec := range req.Specs {
		if err := consensus.CheckServedRounds(spec.Rounds); err != nil {
			return nil, err
		}
	}

	// Resolve fingerprints; serve what the store already has.
	results := make([]consensus.SweepResult, len(req.Specs))
	var initial []consensus.SweepResult
	var toCompute []pending
	storeHits, resolveErrs := 0, 0
	for i, spec := range req.Specs {
		fp, err := c.fingerprint(spec)
		if err != nil {
			results[i] = consensus.SweepResult{Index: i, Spec: spec, Err: err.Error()}
			initial = append(initial, results[i])
			resolveErrs++
			continue
		}
		if fp != "" {
			if sum, ok := c.store.Lookup(fp); ok {
				s := sum
				results[i] = consensus.SweepResult{Index: i, Spec: spec, Fingerprint: fp, Cached: true, Summary: &s}
				initial = append(initial, results[i])
				storeHits++
				continue
			}
		}
		key := fp
		if key == "" {
			h := sha256.Sum256(append([]byte("spec:"), []byte(fmt.Sprintf("%+v", spec))...))
			key = "spec:" + hex.EncodeToString(h[:])
		}
		toCompute = append(toCompute, pending{index: i, spec: spec, fp: fp, key: key})
	}

	shards := c.buildShards(toCompute, req.Workers)
	if len(shards) > 0 && c.WorkerCount() == 0 {
		return nil, errNoWorkers
	}

	// Backpressure: admit all shards or none. An empty queue always
	// admits, so one oversized request cannot wedge itself.
	c.mu.Lock()
	if len(shards) > 0 && c.admitted > 0 && c.admitted+len(shards) > c.queueCap {
		depth := c.admitted
		c.mu.Unlock()
		c.met.rejected.Inc()
		if c.log != nil {
			c.log.Warn("sweep rejected by backpressure",
				"specs", len(req.Specs), "shards", len(shards), "queue_depth", depth)
		}
		return nil, &BusyError{RetryAfter: time.Second}
	}
	c.admitted += len(shards)
	c.met.queueDepth.Set(float64(c.admitted))
	c.mu.Unlock()

	c.met.sweeps.Inc()
	c.met.specsServed.Add(uint64(len(req.Specs)))
	c.met.specsFromStore.Add(uint64(storeHits))
	c.met.specsFailed.Add(uint64(resolveErrs))

	sweepSpan := c.tracer.Begin("sweep", 0,
		obs.Attr{Key: "specs", Value: strconv.Itoa(len(req.Specs))},
		obs.Attr{Key: "shards", Value: strconv.Itoa(len(shards))},
		obs.Attr{Key: "store_hits", Value: strconv.Itoa(storeHits)})
	defer c.tracer.End(sweepSpan)
	if c.log != nil {
		c.log.Info("sweep admitted", "sweep", uint64(sweepSpan),
			"specs", len(req.Specs), "shards", len(shards),
			"store_hits", storeHits, "resolve_errors", resolveErrs)
	}

	dispatchCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var emitMu sync.Mutex
	emitFailed := false
	send := func(ev ResultsEvent) {
		if emit == nil {
			return
		}
		emitMu.Lock()
		defer emitMu.Unlock()
		if emitFailed {
			return
		}
		if err := emit(ev); err != nil {
			emitFailed = true
			cancel()
		}
	}
	if len(initial) > 0 {
		send(ResultsEvent{Results: initial})
	}

	var wg sync.WaitGroup
	var resMu sync.Mutex
	for _, sh := range shards {
		// The shard span opens at admission, on the sweep goroutine, so
		// queue wait is inside it; it closes after the shard's results
		// are merged and emitted.
		span := c.tracer.Begin("shard", sweepSpan,
			obs.Attr{Key: "shard", Value: sh.id},
			obs.Attr{Key: "specs", Value: strconv.Itoa(len(sh.specs))})
		wg.Add(1)
		go func(sh *shard, span obs.SpanID) {
			defer wg.Done()
			defer func() {
				c.mu.Lock()
				c.admitted--
				c.met.queueDepth.Set(float64(c.admitted))
				c.mu.Unlock()
			}()
			defer c.tracer.End(span)
			shardStart := time.Now()
			out, err := c.runShard(dispatchCtx, sh, span)
			c.met.shardSeconds.Observe(time.Since(shardStart).Seconds())
			ev := make([]consensus.SweepResult, 0, len(sh.specs))
			if err != nil {
				c.met.shardFailures.Inc()
				c.met.specsFailed.Add(uint64(len(sh.specs)))
				c.tracer.Annotate(span, obs.Attr{Key: "error", Value: err.Error()})
				if c.log != nil {
					c.log.Error("shard failed", "sweep", uint64(sweepSpan),
						"shard", sh.id, "span", uint64(span), "err", err)
				}
				for j, idx := range sh.indices {
					ev = append(ev, consensus.SweepResult{
						Index: idx, Spec: sh.specs[j], Fingerprint: sh.fps[j], Err: err.Error(),
					})
				}
			} else {
				for j := range out {
					r := out[j]
					r.Index = sh.indices[j]
					if sh.fps[j] != "" && r.Summary != nil {
						if r.Fingerprint == sh.fps[j] {
							c.store.Insert(sh.fps[j], *r.Summary)
						} else {
							c.met.fpMismatches.Inc()
						}
					}
					if r.Err != "" {
						c.met.specsFailed.Inc()
					} else {
						c.met.specsComputed.Inc()
					}
					ev = append(ev, r)
				}
			}
			resMu.Lock()
			for _, r := range ev {
				results[r.Index] = r
			}
			resMu.Unlock()
			send(ResultsEvent{Results: ev})
		}(sh, span)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	emitMu.Lock()
	failed := emitFailed
	emitMu.Unlock()
	if failed {
		return nil, fmt.Errorf("distributed: client went away mid-stream")
	}

	stats := SweepStats{
		Specs:     len(req.Specs),
		StoreHits: storeHits,
		Shards:    len(shards),
		ElapsedMS: time.Since(start).Milliseconds(),
	}
	for i := range results {
		if results[i].Err != "" {
			stats.Errors++
		}
	}
	stats.Computed = len(req.Specs) - storeHits - stats.Errors
	return &SweepResponse{Results: results, Stats: stats}, nil
}

// runShard dispatches one shard with retry: rendezvous-preferred worker
// first, then the next-ranked healthy worker on failure, exponential
// backoff between attempts. Network errors mark the worker unhealthy;
// 4xx responses are terminal (re-sending the same bytes elsewhere
// cannot help). Each attempt annotates the shard's span with the
// worker it targeted.
func (c *Coordinator) runShard(ctx context.Context, sh *shard, span obs.SpanID) ([]consensus.SweepResult, error) {
	c.met.shardsDispatched.Inc()
	var lastErr error
	for attempt := 1; attempt <= c.attempts; attempt++ {
		if attempt > 1 {
			c.met.shardRetries.Inc()
			if err := sleepCtx(ctx, c.retryBase<<(attempt-2)); err != nil {
				return nil, err
			}
		}
		ranked := c.rankedFor(sh.key)
		if len(ranked) == 0 {
			return nil, errNoWorkers
		}
		var cands []*workerState
		for _, w := range ranked {
			if w.healthy.Load() {
				cands = append(cands, w)
			}
		}
		if len(cands) == 0 {
			cands = ranked
		}
		target := cands[(attempt-1)%len(cands)]
		if target != ranked[0] {
			c.met.shardReroutes.Inc()
		}
		c.tracer.Annotate(span,
			obs.Attr{Key: "attempt." + strconv.Itoa(attempt), Value: target.url})
		if c.log != nil {
			c.log.Info("shard dispatched", "shard", sh.id, "span", uint64(span),
				"attempt", attempt, "worker", target.url)
		}
		out, retryable, err := c.postShard(ctx, target, sh)
		if err == nil {
			target.shardsDone.Add(1)
			return out, nil
		}
		target.shardErrors.Add(1)
		lastErr = err
		if c.log != nil {
			c.log.Warn("shard attempt failed", "shard", sh.id, "span", uint64(span),
				"attempt", attempt, "worker", target.url, "retryable", retryable, "err", err)
		}
		if !retryable {
			break
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

// postShard performs one shard round-trip against one worker under its
// in-flight cap. retryable reports whether another worker (or another
// attempt) could still serve the shard.
func (c *Coordinator) postShard(ctx context.Context, w *workerState, sh *shard) (res []consensus.SweepResult, retryable bool, err error) {
	select {
	case w.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	w.inFlight.Add(1)
	defer func() {
		w.inFlight.Add(-1)
		<-w.sem
	}()

	body, err := json.Marshal(ShardRequest{Shard: sh.id, Specs: sh.specs, Workers: sh.workers})
	if err != nil {
		return nil, false, err
	}
	rctx, cancel := context.WithTimeout(ctx, c.shardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, w.url+"/api/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		w.healthy.Store(false)
		return nil, true, fmt.Errorf("distributed: worker %s: %v", w.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg := resp.Status
		var eb errorBody
		if derr := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&eb); derr == nil && eb.Error != "" {
			msg = eb.Error
		}
		return nil, resp.StatusCode >= 500, fmt.Errorf("distributed: worker %s: %s", w.url, msg)
	}
	var sr ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, true, fmt.Errorf("distributed: worker %s: bad shard response: %v", w.url, err)
	}
	if len(sr.Results) != len(sh.specs) {
		return nil, true, fmt.Errorf("distributed: worker %s: shard returned %d results for %d specs",
			w.url, len(sr.Results), len(sh.specs))
	}
	return sr.Results, false, nil
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := c.runSweep(r.Context(), req, nil)
	if err != nil {
		c.writeSweepError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) writeSweepError(w http.ResponseWriter, err error) {
	var busy *BusyError
	switch {
	case errors.As(err, &busy):
		secs := int((busy.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, errNoWorkers):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, statusOf(err), err)
	}
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	healthy, err := c.AddWorker(req.URL)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, RegisterResponse{
		URL:     strings.TrimRight(req.URL, "/"),
		Healthy: healthy,
		Workers: c.WorkerCount(),
	})
}
