package distributed

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// sseWriter serializes Server-Sent Events onto one response. Callers
// hold the coordinator's emit lock, so writes never interleave.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (s *sseWriter) event(name string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, data); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}

// handleSweepStream is the streaming sweep endpoint: one SSE "results"
// event per completed batch (store hits and resolution errors first,
// then each shard as it lands, any order), closed by a "done" event
// carrying SweepStats. Admission runs before the first event, so
// backpressure and validation failures arrive as plain status codes
// (429 + Retry-After, 400, 503) rather than mid-stream aborts; after
// the stream starts, a failure simply truncates it — the absence of
// "done" is the error signal.
func (c *Coordinator) handleSweepStream(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	f, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError,
			fmt.Errorf("distributed: connection does not support streaming"))
		return
	}
	sse := &sseWriter{w: w, f: f}
	started := false
	emit := func(ev ResultsEvent) error {
		if !started {
			started = true
			w.Header().Set("Content-Type", "text/event-stream")
			w.Header().Set("Cache-Control", "no-cache")
			w.WriteHeader(http.StatusOK)
		}
		if err := sse.event("results", ev); err != nil {
			return err
		}
		c.met.sseBatches.Inc()
		return nil
	}
	resp, err := c.runSweep(r.Context(), req, emit)
	if err != nil {
		if !started {
			c.writeSweepError(w, err)
		}
		return
	}
	if !started {
		// Unreachable on success (every spec yields exactly one emitted
		// result), but keep "done" on an event-stream response anyway.
		_ = emit(ResultsEvent{})
	}
	_ = sse.event("done", resp.Stats)
}
