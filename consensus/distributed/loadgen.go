package distributed

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/consensus"
)

// StreamEntry is one recorded sweep request: its offset from the start
// of the recording and the request body. Streams are stored as JSONL,
// one entry per line, replayable at a time-compression factor.
type StreamEntry struct {
	AtMS    int64        `json:"at_ms"`
	Request SweepRequest `json:"request"`
}

// ReadStream decodes a JSONL request stream.
func ReadStream(r io.Reader) ([]StreamEntry, error) {
	var entries []StreamEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxRequestBytes)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var e StreamEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("distributed: stream line %d: %v", line, err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("distributed: stream holds no requests")
	}
	return entries, nil
}

// WriteStream encodes a request stream as JSONL.
func WriteStream(w io.Writer, entries []StreamEntry) error {
	enc := json.NewEncoder(w)
	for i := range entries {
		if err := enc.Encode(&entries[i]); err != nil {
			return err
		}
	}
	return nil
}

// SyntheticOptions shapes SyntheticStream.
type SyntheticOptions struct {
	// Requests is the entry count (default 50).
	Requests int
	// SpecsPerRequest is the sweep width per entry (default 8).
	SpecsPerRequest int
	// RepeatFraction in [0,1] is the probability a spec repeats an
	// earlier one — the store-hit knob (default 0.5).
	RepeatFraction float64
	// IntervalMS is the mean gap between entries (default 100).
	IntervalMS int64
	// Seed makes the stream reproducible (default 1).
	Seed int64
}

// SyntheticStream generates a deterministic mixed sweep/scenario-grid
// request stream: midpoint/amortized/mean runs over deaf and psi
// models, a slice of scenario-driven specs, and a tunable fraction of
// exact repeats to exercise the content-addressed store.
func SyntheticStream(opts SyntheticOptions) []StreamEntry {
	if opts.Requests <= 0 {
		opts.Requests = 50
	}
	if opts.SpecsPerRequest <= 0 {
		opts.SpecsPerRequest = 8
	}
	if opts.RepeatFraction < 0 {
		opts.RepeatFraction = 0
	}
	if opts.RepeatFraction > 1 {
		opts.RepeatFraction = 1
	}
	if opts.IntervalMS <= 0 {
		opts.IntervalMS = 100
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	models := []string{"deaf:4", "deaf:6", "deaf:8", "psi:5"}
	algs := []string{"midpoint", "amortized", "mean"}
	advs := []string{"cycle", "random"}
	scens := []string{"eventuallyrooted:5,2", "partitionheal:6,2,4"}

	fresh := func() consensus.RunSpec {
		if rng.Float64() < 0.25 {
			return consensus.RunSpec{
				Scenario:  scens[rng.Intn(len(scens))],
				Algorithm: algs[rng.Intn(len(algs))],
				Rounds:    8 + rng.Intn(8),
			}
		}
		return consensus.RunSpec{
			Model:     models[rng.Intn(len(models))],
			Algorithm: algs[rng.Intn(len(algs))],
			Adversary: advs[rng.Intn(len(advs))],
			Rounds:    10 + rng.Intn(20),
			Seed:      int64(1 + rng.Intn(16)),
		}
	}

	var seen []consensus.RunSpec
	entries := make([]StreamEntry, opts.Requests)
	at := int64(0)
	for i := range entries {
		specs := make([]consensus.RunSpec, opts.SpecsPerRequest)
		for j := range specs {
			if len(seen) > 0 && rng.Float64() < opts.RepeatFraction {
				specs[j] = seen[rng.Intn(len(seen))]
			} else {
				specs[j] = fresh()
				seen = append(seen, specs[j])
			}
		}
		entries[i] = StreamEntry{AtMS: at, Request: SweepRequest{Specs: specs}}
		at += 1 + rng.Int63n(2*opts.IntervalMS)
	}
	return entries
}

// ReplayOptions shapes Replay.
type ReplayOptions struct {
	// Speed divides the recorded gaps: 10 replays a stream ten times
	// faster than recorded (default 1; <= 0 means 1).
	Speed float64
	// Concurrency caps in-flight requests (default 8).
	Concurrency int
	// Attempts caps tries per request across 429 rejections, honoring
	// Retry-After between tries (default 3).
	Attempts int
	// Client overrides the HTTP client.
	Client *http.Client
}

// ReplayReport aggregates one replay run.
type ReplayReport struct {
	Requests  int     `json:"requests"`
	Specs     int     `json:"specs"`
	Errors    int     `json:"errors"`
	Rejected  int     `json:"rejected"` // 429 responses observed (retried up to Attempts)
	ElapsedMS int64   `json:"elapsed_ms"`
	ReqPerSec float64 `json:"req_per_sec"`

	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP95MS float64 `json:"latency_p95_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`
	LatencyMaxMS float64 `json:"latency_max_ms"`
}

// Replay replays a recorded request stream against a coordinator (or a
// single-process sweep server — the request shape is shared) at a time
// compression factor, measuring sustained request rate and latency
// percentiles. Latency is measured per successful request, first byte
// to last; 429s wait out Retry-After and retry up to Attempts.
func Replay(ctx context.Context, baseURL string, entries []StreamEntry, opts ReplayOptions) (*ReplayReport, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("distributed: nothing to replay")
	}
	if opts.Speed <= 0 {
		opts.Speed = 1
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	if opts.Attempts <= 0 {
		opts.Attempts = 3
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}

	var (
		mu        sync.Mutex
		latencies []float64
		errs      int
		rejected  int
		specs     int
	)
	sem := make(chan struct{}, opts.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range entries {
		e := &entries[i]
		due := time.Duration(float64(e.AtMS)/opts.Speed) * time.Millisecond
		if wait := due - time.Since(start); wait > 0 {
			if err := sleepCtx(ctx, wait); err != nil {
				break
			}
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			lat, rej, err := replayOne(ctx, client, baseURL, e, opts.Attempts)
			mu.Lock()
			defer mu.Unlock()
			rejected += rej
			if err != nil {
				errs++
				return
			}
			latencies = append(latencies, lat.Seconds()*1000)
			specs += len(e.Request.Specs)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &ReplayReport{
		Requests:  len(entries),
		Specs:     specs,
		Errors:    errs,
		Rejected:  rejected,
		ElapsedMS: elapsed.Milliseconds(),
	}
	if elapsed > 0 {
		rep.ReqPerSec = float64(len(latencies)) / elapsed.Seconds()
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		rep.LatencyP50MS = percentile(latencies, 0.50)
		rep.LatencyP95MS = percentile(latencies, 0.95)
		rep.LatencyP99MS = percentile(latencies, 0.99)
		rep.LatencyMaxMS = latencies[len(latencies)-1]
	}
	return rep, nil
}

// replayOne sends one request, retrying over 429s. rej counts the 429s
// observed regardless of the final outcome.
func replayOne(ctx context.Context, client *http.Client, baseURL string, e *StreamEntry, attempts int) (lat time.Duration, rej int, err error) {
	body, err := json.Marshal(&e.Request)
	if err != nil {
		return 0, 0, err
	}
	for attempt := 1; attempt <= attempts; attempt++ {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/api/v1/sweep", bytes.NewReader(body))
		if rerr != nil {
			return 0, rej, rerr
		}
		req.Header.Set("Content-Type", "application/json")
		t0 := time.Now()
		resp, rerr := client.Do(req)
		if rerr != nil {
			return 0, rej, rerr
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			return time.Since(t0), rej, nil
		case resp.StatusCode == http.StatusTooManyRequests:
			rej++
			wait := time.Second
			if s, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && s > 0 {
				wait = time.Duration(s) * time.Second
			}
			if attempt < attempts {
				if serr := sleepCtx(ctx, wait); serr != nil {
					return 0, rej, serr
				}
				continue
			}
			return 0, rej, fmt.Errorf("distributed: rejected %d times", rej)
		default:
			return 0, rej, fmt.Errorf("distributed: %s from %s", resp.Status, baseURL)
		}
	}
	return 0, rej, fmt.Errorf("distributed: rejected %d times", rej)
}

// percentile reads quantile q from sorted (ascending) values.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
