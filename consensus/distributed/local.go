package distributed

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"
)

// LocalCluster is an in-process fleet on loopback listeners: one
// coordinator plus N workers, each behind a real http.Server — the
// harness behind the CI smoke job, the paperbench distributed series,
// and the error-path tests. Unlike httptest it is importable from
// non-test code.
type LocalCluster struct {
	Coordinator *Coordinator
	Workers     []*Worker

	// BaseURL is the coordinator's http://127.0.0.1:port root.
	BaseURL string
	// WorkerURLs are the workers' roots, index-aligned with Workers.
	WorkerURLs []string

	servers []*http.Server
}

// StartLocal starts nWorkers workers and a coordinator wired to them.
// Worker options apply to every worker. Call Close when done.
func StartLocal(nWorkers int, copts []CoordinatorOption, wopts []WorkerOption) (*LocalCluster, error) {
	if nWorkers < 1 {
		return nil, fmt.Errorf("distributed: local cluster needs at least one worker")
	}
	lc := &LocalCluster{}
	for i := 0; i < nWorkers; i++ {
		w := NewWorker(wopts...)
		url, err := lc.serve(w)
		if err != nil {
			lc.Close()
			return nil, err
		}
		lc.Workers = append(lc.Workers, w)
		lc.WorkerURLs = append(lc.WorkerURLs, url)
	}
	lc.Coordinator = NewCoordinator(append(copts, CoordinatorWorkers(lc.WorkerURLs...))...)
	url, err := lc.serve(lc.Coordinator)
	if err != nil {
		lc.Close()
		return nil, err
	}
	lc.BaseURL = url
	return lc, nil
}

// serve binds handler to a fresh loopback port and serves it.
func (lc *LocalCluster) serve(h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: h}
	lc.servers = append(lc.servers, srv)
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), nil
}

// Close shuts the cluster down: coordinator health loop first, then
// every listener (coordinator included), draining briefly.
func (lc *LocalCluster) Close() {
	if lc.Coordinator != nil {
		lc.Coordinator.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for _, srv := range lc.servers {
		_ = srv.Shutdown(ctx)
	}
}
