package distributed

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// maxRequestBytes bounds any JSON request body this package decodes,
// matching the single-process server's input bound.
const maxRequestBytes = 8 << 20

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// statusOf maps a computation error to an HTTP status, mirroring the
// single-process server.
func statusOf(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout
	}
	return http.StatusBadRequest
}

// decodeBody strictly decodes the size-limited JSON request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("distributed: bad request body: %v", err)
	}
	return nil
}
