package distributed

import (
	"repro/consensus"
)

// Store is the coordinator's content-addressed result store: completed
// run summaries addressed by the run's content fingerprint — the hex
// SHA-256 of the session's canonical configuration key (which embeds the
// schedule's SHA-256 trace fingerprint for scenario runs, and the
// initial-configuration fingerprint the valency tables are keyed by).
// Addresses are process-independent, so any worker's result stores under
// the same key the coordinator computed at submission, and a re-submitted
// spec — from any client, any ordering, any sweep composition — is a
// lookup, not a recompute.
//
// The store rides the bounded, FIFO-evicting, instrumented SweepCache:
// same eviction policy, same hit/miss/eviction counters (surfaced at
// /api/v1/status), just addressed by content instead of by process-local
// cache key.
type Store struct {
	cache *consensus.SweepCache
}

// DefaultStoreCapacity bounds a coordinator store built without an
// explicit capacity.
const DefaultStoreCapacity = 1 << 18

// NewStore returns an empty store holding at most capacity summaries
// (DefaultStoreCapacity for capacity <= 0).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultStoreCapacity
	}
	return &Store{cache: consensus.NewSweepCacheSize(capacity)}
}

// Lookup returns the summary stored under the given content
// fingerprint, counting a hit or a miss.
func (s *Store) Lookup(fingerprint string) (consensus.RunSummary, bool) {
	return s.cache.Lookup(fingerprint)
}

// Insert stores a summary under its content fingerprint.
func (s *Store) Insert(fingerprint string, sum consensus.RunSummary) {
	s.cache.Insert(fingerprint, sum)
}

// Counters returns the store's hit/miss/eviction accounting.
func (s *Store) Counters() consensus.SweepCacheCounters { return s.cache.Counters() }
