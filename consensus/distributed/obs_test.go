package distributed_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/consensus/distributed"
	"repro/internal/obs"
)

// scrapeMetrics fetches a Prometheus text endpoint into a
// name{labels} -> value map.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q, want text/plain exposition", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed metrics value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStatusMetricsParity is the one-source-of-truth check: every
// number /api/v1/status reports must equal the corresponding series
// scraped from /metrics, on the coordinator and on a worker, because
// both surfaces read the same registry instruments.
func TestStatusMetricsParity(t *testing.T) {
	lc, err := distributed.StartLocal(2,
		[]distributed.CoordinatorOption{
			distributed.CoordinatorHealthInterval(0),
			distributed.CoordinatorRetry(3, 5*time.Millisecond),
		},
		[]distributed.WorkerOption{distributed.WorkerTimeout(time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	// Two identical sweeps: the second is served by the store, so both
	// the computed and from-store paths have non-zero counters.
	for i := 0; i < 2; i++ {
		if sr, resp := postSweep(t, lc.BaseURL, distributed.SweepRequest{Specs: mixedSpecs()}); sr == nil {
			t.Fatalf("sweep %d failed: %s", i, resp.Status)
		}
	}

	st := getStatus(t, lc.BaseURL)
	m := scrapeMetrics(t, lc.BaseURL+"/metrics")
	checks := []struct {
		series string
		want   float64
	}{
		{"repro_coord_sweeps_total", float64(st.Sweeps)},
		{"repro_coord_specs_served_total", float64(st.SpecsServed)},
		{"repro_coord_specs_from_store_total", float64(st.SpecsFromStore)},
		{"repro_coord_specs_computed_total", float64(st.SpecsComputed)},
		{"repro_coord_specs_failed_total", float64(st.SpecsFailed)},
		{"repro_coord_shards_dispatched_total", float64(st.ShardsDispatched)},
		{"repro_coord_shard_retries_total", float64(st.ShardRetries)},
		{"repro_coord_shard_failures_total", float64(st.ShardFailures)},
		{"repro_coord_rejected_total", float64(st.Rejected)},
		{"repro_coord_fp_mismatches_total", float64(st.FingerprintMismatches)},
		{"repro_coord_queue_depth", float64(st.QueueDepth)},
		{"repro_coord_queue_capacity", float64(st.QueueCapacity)},
		{"repro_coord_store_hits", float64(st.Store.Hits)},
		{"repro_coord_store_misses", float64(st.Store.Misses)},
		{"repro_coord_store_entries", float64(st.Store.Entries)},
		{"repro_coord_store_hit_rate", st.StoreHitRate},
		{"repro_coord_workers", 2},
	}
	for _, ck := range checks {
		got, ok := m[ck.series]
		if !ok {
			t.Errorf("coordinator /metrics missing %s", ck.series)
			continue
		}
		if got != ck.want {
			t.Errorf("%s: /metrics %v vs /api/v1/status %v", ck.series, got, ck.want)
		}
	}
	if st.Sweeps != 2 || st.SpecsFromStore == 0 || st.SpecsComputed == 0 {
		t.Fatalf("workload did not exercise both paths: %+v", st)
	}

	// Worker side: shard counters on /api/v1/status vs the shared
	// registry behind the embedded server's /metrics.
	var busy int
	for i, wu := range lc.WorkerURLs {
		resp, err := http.Get(wu + "/api/v1/status")
		if err != nil {
			t.Fatal(err)
		}
		var ws distributed.WorkerStatus
		if err := json.NewDecoder(resp.Body).Decode(&ws); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		wm := scrapeMetrics(t, wu+"/metrics")
		if got := wm["repro_worker_shards_total"]; got != float64(ws.Shards) {
			t.Errorf("worker %d shards: /metrics %v vs status %d", i, got, ws.Shards)
		}
		if got := wm["repro_worker_shard_specs_total"]; got != float64(ws.ShardSpecs) {
			t.Errorf("worker %d shard specs: /metrics %v vs status %d", i, got, ws.ShardSpecs)
		}
		if got := wm["repro_worker_shard_errors_total"]; got != float64(ws.ShardErrors) {
			t.Errorf("worker %d shard errors: /metrics %v vs status %d", i, got, ws.ShardErrors)
		}
		if ws.Shards > 0 {
			busy++
		}
		if _, ok := wm[`repro_server_requests_total{endpoint="status"}`]; !ok {
			t.Errorf("worker %d /metrics missing embedded server request series", i)
		}
	}
	if busy == 0 {
		t.Fatal("no worker reports completed shards")
	}
}

// TestSweepSpansExported drives a sweep and checks the span ring at
// /api/v1/spans: one closed root "sweep" span whose shard children
// link back to it and also closed.
func TestSweepSpansExported(t *testing.T) {
	ts, _ := startCluster(t, nil)
	if sr, resp := postSweep(t, ts.URL, distributed.SweepRequest{Specs: mixedSpecs()}); sr == nil {
		t.Fatalf("sweep failed: %s", resp.Status)
	}
	resp, err := http.Get(ts.URL + "/api/v1/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Spans []obs.Span `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	var root obs.SpanID
	shards := 0
	for _, sp := range payload.Spans {
		if sp.EndUnix == 0 {
			t.Errorf("span %d (%s) never ended", sp.ID, sp.Name)
		}
		switch sp.Name {
		case "sweep":
			root = sp.ID
		case "shard":
			shards++
		}
	}
	if root == 0 {
		t.Fatal("no sweep root span exported")
	}
	if shards == 0 {
		t.Fatal("no shard spans exported")
	}
	for _, sp := range payload.Spans {
		if sp.Name != "shard" {
			continue
		}
		if sp.Parent != root {
			t.Errorf("shard span %d parented to %d, want sweep root %d", sp.ID, sp.Parent, root)
		}
		var worker string
		for _, a := range sp.Attrs {
			if strings.HasPrefix(a.Key, "attempt.") {
				worker = a.Value
			}
		}
		if worker == "" {
			t.Errorf("shard span %d has no attempt annotation", sp.ID)
		}
	}
}
