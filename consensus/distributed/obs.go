package distributed

import (
	"net/http"

	"repro/internal/obs"
)

// This file binds the distributed plane to per-instance obs
// registries. Unlike the kernel and sweep series (which ride
// obs.Default() and vanish under REPRO_OBS=off), the coordinator and
// worker registries are always on: they are the single source of
// truth behind /api/v1/status, so disabling them would change the
// service's wire behaviour, not just its telemetry.

// coordTracerCapacity bounds the coordinator's span ring: one root
// span per sweep plus one child per shard, oldest evicted first.
const coordTracerCapacity = 4096

// coordMetrics holds the coordinator's instruments. Every counter
// that /api/v1/status reports lives here; Status() reads the values
// back from these instruments so the JSON surface and /metrics can
// never disagree.
type coordMetrics struct {
	sweeps           *obs.Counter
	specsServed      *obs.Counter
	specsFromStore   *obs.Counter
	specsComputed    *obs.Counter
	specsFailed      *obs.Counter
	shardsDispatched *obs.Counter
	shardRetries     *obs.Counter
	shardReroutes    *obs.Counter
	shardFailures    *obs.Counter
	rejected         *obs.Counter
	fpMismatches     *obs.Counter
	sseBatches       *obs.Counter
	queueDepth       *obs.Gauge
	shardSeconds     *obs.Histogram
}

func newCoordMetrics(r *obs.Registry) *coordMetrics {
	return &coordMetrics{
		sweeps: r.Counter("repro_coord_sweeps_total",
			"Distributed sweeps admitted past backpressure."),
		specsServed: r.Counter("repro_coord_specs_served_total",
			"Run specs carried by admitted distributed sweeps."),
		specsFromStore: r.Counter("repro_coord_specs_from_store_total",
			"Specs served straight from the content-addressed store."),
		specsComputed: r.Counter("repro_coord_specs_computed_total",
			"Specs computed by workers and returned without error."),
		specsFailed: r.Counter("repro_coord_specs_failed_total",
			"Specs that failed: fingerprint resolution, shard exhaustion, or per-spec worker errors."),
		shardsDispatched: r.Counter("repro_coord_shards_dispatched_total",
			"Shards handed to the dispatch loop."),
		shardRetries: r.Counter("repro_coord_shard_retries_total",
			"Shard attempts past the first."),
		shardReroutes: r.Counter("repro_coord_shard_reroutes_total",
			"Shard attempts sent somewhere other than the rendezvous-preferred worker."),
		shardFailures: r.Counter("repro_coord_shard_failures_total",
			"Shards that exhausted every attempt."),
		rejected: r.Counter("repro_coord_rejected_total",
			"Sweeps rejected by queue backpressure (BusyError / HTTP 429)."),
		fpMismatches: r.Counter("repro_coord_fp_mismatches_total",
			"Worker results whose fingerprint disagreed with the coordinator's (result kept, store skipped)."),
		sseBatches: r.Counter("repro_coord_sse_batches_total",
			"Server-sent 'results' batches written to streaming sweep clients."),
		queueDepth: r.Gauge("repro_coord_queue_depth",
			"Shards admitted and not yet finished."),
		shardSeconds: r.Histogram("repro_coord_shard_seconds",
			"Wall time of one shard from dispatch to final verdict, retries included.",
			obs.DurationBuckets()),
	}
}

// registerCoordGauges exposes scrape-time views of the coordinator's
// fleet and store. Registered after construction because the closures
// need the finished Coordinator.
func (c *Coordinator) registerCoordGauges() {
	c.reg.GaugeFunc("repro_coord_workers",
		"Registered workers.",
		func() float64 { return float64(c.WorkerCount()) })
	c.reg.GaugeFunc("repro_coord_workers_healthy",
		"Registered workers whose last health probe succeeded.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			n := 0
			for _, w := range c.workers {
				if w.healthy.Load() {
					n++
				}
			}
			return float64(n)
		})
	c.reg.GaugeFunc("repro_coord_queue_capacity",
		"Admission bound on unfinished shards.",
		func() float64 { return float64(c.queueCap) })
	c.reg.GaugeFunc("repro_coord_store_hits",
		"Content-addressed store lookups served.",
		func() float64 { return float64(c.store.Counters().Hits) })
	c.reg.GaugeFunc("repro_coord_store_misses",
		"Content-addressed store lookups missed.",
		func() float64 { return float64(c.store.Counters().Misses) })
	c.reg.GaugeFunc("repro_coord_store_evictions",
		"Summaries evicted from the content-addressed store.",
		func() float64 { return float64(c.store.Counters().Evictions) })
	c.reg.GaugeFunc("repro_coord_store_entries",
		"Summaries resident in the content-addressed store.",
		func() float64 { return float64(c.store.Counters().Entries) })
	c.reg.GaugeFunc("repro_coord_store_hit_rate",
		"Store hits over lookups (0 when no lookups yet).",
		func() float64 { return c.store.Counters().HitRate() })
}

// handleMetrics serves the coordinator registry plus the process-wide
// default registry (kernel/sweep series from any local computation) as
// Prometheus text.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WriteAllPrometheus(w, c.reg, obs.Default())
}

// handleSpans exports the span ring as JSON, oldest first.
func (c *Coordinator) handleSpans(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = c.tracer.WriteJSON(w)
}

// workerMetrics holds the worker's shard-endpoint instruments. They
// live on the registry shared with the embedded consensus.Server, so
// the server's /metrics covers both planes in one scrape.
type workerMetrics struct {
	shards      *obs.Counter
	shardSpecs  *obs.Counter
	shardErrors *obs.Counter
}

func newWorkerMetrics(r *obs.Registry) *workerMetrics {
	return &workerMetrics{
		shards: r.Counter("repro_worker_shards_total",
			"Shard requests executed to completion."),
		shardSpecs: r.Counter("repro_worker_shard_specs_total",
			"Run specs carried by completed shard requests."),
		shardErrors: r.Counter("repro_worker_shard_errors_total",
			"Shard requests rejected or failed."),
	}
}
