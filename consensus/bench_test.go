package consensus

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
)

// BenchmarkSessionVsCore is the facade-overhead acceptance race: the
// n=16, 1000-round dense contraction race of BenchmarkContractionDense
// (deaf(K_16) graphs in round-robin, midpoint), once driven directly
// through core.RunConfigBackend and once through consensus.Session.Run.
// The session must be within 5% of the direct path: its only additions
// are the registry-resolved source construction and the context check,
// which compiles to nothing for non-cancellable contexts.
func BenchmarkSessionVsCore(b *testing.B) {
	const n, rounds = 16, 1000
	inputs := SpreadInputs(n)
	m := model.DeafModel(graph.Complete(n))
	alg, err := Algorithms.New("midpoint", n)
	if err != nil {
		b.Fatal(err)
	}
	backend := core.CurrentBackend()

	b.Run("core", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src := core.Cycle{Graphs: m.Graphs()}
			tr := core.RunConfigBackend(alg.Name(), core.NewConfig(alg, inputs), src, rounds, backend)
			if tr.Rounds() != rounds {
				b.Fatal("short race")
			}
		}
	})

	session, err := New(
		WithModel("deaf:16"),
		WithAlgorithm("midpoint"),
		WithAdversary("cycle"),
		WithRounds(rounds),
	)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.Run("session", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := session.Run(ctx)
			if err != nil || res.Rounds() != rounds {
				b.Fatal("short race")
			}
		}
	})
}

// BenchmarkSweepCached measures the fingerprint cache: the same 8-entry
// sweep, answered entirely from cache after the first call.
func BenchmarkSweepCached(b *testing.B) {
	specs := make([]RunSpec, 8)
	for i := range specs {
		specs[i] = RunSpec{
			Model: "deaf:8", Algorithm: "midpoint", Adversary: "random",
			Rounds: 64, Seed: int64(i + 1),
		}
	}
	cache := NewSweepCache()
	ctx := context.Background()
	if _, err := Sweep(ctx, specs, WithSweepCache(cache)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := Sweep(ctx, specs, WithSweepCache(cache))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if !r.Cached {
				b.Fatal("cache miss on repeated sweep")
			}
		}
	}
}

// sweepBatchSpecs returns the acceptance sweep: 64 specs over deaf(K16)
// midpoint, 1000 rounds each, inputs varied per spec (a Table-1-style
// input family) so nothing is answered from cache.
func sweepBatchSpecs() []RunSpec {
	specs := make([]RunSpec, 64)
	for i := range specs {
		inputs := SpreadInputs(16)
		inputs[2] = float64(i) / 64
		specs[i] = RunSpec{Model: "deaf:16", Algorithm: "midpoint", Adversary: "cycle", Rounds: 1000, Inputs: inputs}
	}
	return specs
}

// BenchmarkSweepBatch is the batch plane's acceptance race: the 64-spec,
// n=16, 1000-round sweep once through the goroutine-per-run path
// (SweepBatchSize(1), PR 3's Sweep semantics) and once through the tiled
// batch plane, at equal worker count. The acceptance criterion is >= 2x
// throughput with byte-identical per-run outputs and cache fingerprints
// (TestSweepBatchMatchesSingle / TestSweepBatchSharesCacheKeys).
func BenchmarkSweepBatch(b *testing.B) {
	specs := sweepBatchSpecs()
	ctx := context.Background()
	for _, mode := range []struct {
		name string
		opts []SweepOption
	}{
		{"single", []SweepOption{SweepBatchSize(1)}},
		{"batch", nil},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opts := append([]SweepOption{WithSweepCache(NewSweepCache())}, mode.opts...)
				results, err := Sweep(ctx, specs, opts...)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != "" || r.Summary == nil {
						b.Fatalf("spec %d failed: %s", r.Index, r.Err)
					}
				}
			}
			runs := float64(len(specs)) * float64(b.N)
			b.ReportMetric(runs/b.Elapsed().Seconds(), "runs/s")
		})
	}
}

// BenchmarkSessionStreaming measures the constant-memory streaming path
// on the same dense race.
func BenchmarkSessionStreaming(b *testing.B) {
	session, err := New(
		WithModel("deaf:16"),
		WithAlgorithm("midpoint"),
		WithAdversary("cycle"),
		WithRounds(1000),
	)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		last := 0
		for snap, err := range session.Rounds(ctx) {
			if err != nil {
				b.Fatal(err)
			}
			last = snap.Round
		}
		if last != 1000 {
			b.Fatal("short race")
		}
	}
}
