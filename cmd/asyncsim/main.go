// Command asyncsim runs the asynchronous message-passing simulator of
// Section 8: the non-round-based MinRelay algorithm, or any algorithm
// from the consensus registry embedded round-based (wait for n-f messages
// per round), under random delays and a crash schedule, reporting the
// diameter of the correct agents over time.
//
// The -proc switch resolves through the public algorithm registry, so
// every registered update rule — including the quantized and flood-root
// variants — runs here too; "midpoint" and "selectedmean" keep their
// classical meaning.
//
// Usage:
//
//	asyncsim -proc minrelay -n 6 -f 3
//	asyncsim -proc midpoint -n 5 -f 2 -rounds 20
//	asyncsim -proc selectedmean -n 9 -f 3 -rounds 20 -seed 7
//	asyncsim -proc quantized:0.125 -n 6 -f 2 -rounds 25
//	asyncsim -proc floodroot:0 -n 6 -f 2
//	asyncsim -proc minrelay -n 6 -f 3 -worstcase
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/consensus"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "asyncsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("asyncsim", flag.ContinueOnError)
	fs.SetOutput(out)
	proc := fs.String("proc", "minrelay", "process kind: minrelay | any algorithm spec (midpoint, selectedmean, quantized:Q, floodroot:ROOT, ...)")
	n := fs.Int("n", 6, "number of agents")
	f := fs.Int("f", 2, "crash budget (also the round-based wait threshold n-f)")
	rounds := fs.Int("rounds", 20, "round cap for round-based algorithms")
	seed := fs.Int64("seed", 1, "delay RNG seed")
	worst := fs.Bool("worstcase", false, "use the Theorem 7 worst-case crash chain instead of random crashes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *n < 2 || *f < 0 || *f >= *n {
		return fmt.Errorf("need n >= 2 and 0 <= f < n, got n=%d f=%d", *n, *f)
	}

	res, err := consensus.AsyncRun(context.Background(), consensus.AsyncSpec{
		Process:   *proc,
		N:         *n,
		F:         *f,
		Rounds:    *rounds,
		Seed:      *seed,
		WorstCase: *worst,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "asyncsim: %s, n=%d f=%d, %d crashes scheduled\n",
		*proc, res.N, res.F, res.ScheduledCrashes)
	fmt.Fprintf(out, "%8s  %10s  %s\n", "time", "deliveries", "diameter(correct)")
	for _, s := range res.Samples {
		fmt.Fprintf(out, "%8.1f  %10d  %.6g\n", s.Time, s.Delivered, s.Diameter)
	}
	fmt.Fprintf(out, "\nfinal outputs (correct agents): %.4g\n", res.FinalOutputs)
	if res.MinRelayAgreed != nil {
		fmt.Fprintf(out, "Theorem 7: all correct agents equal by time f+1 = %d -> %v\n",
			*f+1, *res.MinRelayAgreed)
	}
	return nil
}
