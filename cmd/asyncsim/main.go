// Command asyncsim runs the asynchronous message-passing simulator of
// Section 8: round-based algorithms (midpoint, Fekete-style selected
// mean) and the non-round-based MinRelay algorithm, under random delays
// and a crash schedule, reporting the diameter of the correct agents over
// time.
//
// Usage:
//
//	asyncsim -proc minrelay -n 6 -f 3
//	asyncsim -proc midpoint -n 5 -f 2 -rounds 20
//	asyncsim -proc selectedmean -n 9 -f 3 -rounds 20 -seed 7
//	asyncsim -proc minrelay -n 6 -f 3 -worstcase
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/async"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "asyncsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("asyncsim", flag.ContinueOnError)
	fs.SetOutput(out)
	proc := fs.String("proc", "minrelay", "process kind: minrelay | midpoint | selectedmean")
	n := fs.Int("n", 6, "number of agents")
	f := fs.Int("f", 2, "crash budget (also the round-based wait threshold n-f)")
	rounds := fs.Int("rounds", 20, "round cap for round-based algorithms")
	seed := fs.Int64("seed", 1, "delay RNG seed")
	worst := fs.Bool("worstcase", false, "use the Theorem 7 worst-case crash chain instead of random crashes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *n < 2 || *f < 0 || *f >= *n {
		return fmt.Errorf("need n >= 2 and 0 <= f < n, got n=%d f=%d", *n, *f)
	}

	rng := rand.New(rand.NewSource(*seed))
	inputs := make([]float64, *n)
	for i := range inputs {
		inputs[i] = rng.Float64()
	}
	if *worst {
		// The Theorem 7 worst case relays a unique minimum through a chain
		// of f unclean crashes; all other inputs coincide so that nothing
		// else triggers relays (and premature crash broadcasts).
		inputs[0] = -1
		for i := 1; i < *n; i++ {
			inputs[i] = 1
		}
	}

	procs := make([]async.Process, *n)
	switch *proc {
	case "minrelay":
		for i := range procs {
			procs[i] = async.NewMinRelay(i, inputs[i])
		}
	case "midpoint":
		for i := range procs {
			procs[i] = async.NewRoundBased(i, *n, *f, inputs[i], async.MidpointUpdate, *rounds)
		}
	case "selectedmean":
		if *f < 1 {
			return fmt.Errorf("selectedmean needs f >= 1")
		}
		for i := range procs {
			procs[i] = async.NewRoundBased(i, *n, *f, inputs[i], async.SelectedMeanUpdate(*f), *rounds)
		}
	default:
		return fmt.Errorf("unknown process kind %q", *proc)
	}

	var crashes []async.Crash
	if *worst {
		crashes = append(crashes, async.Crash{Agent: 0, AfterBroadcasts: 0, Recipients: 1 << 1})
		for i := 1; i < *f; i++ {
			crashes = append(crashes, async.Crash{Agent: i, AfterBroadcasts: 1, Recipients: 1 << uint(i+1)})
		}
	} else {
		perm := rng.Perm(*n)
		for _, a := range perm[:*f] {
			crashes = append(crashes, async.Crash{
				Agent:           a,
				AfterBroadcasts: rng.Intn(3),
				Recipients:      uint64(rng.Intn(1 << uint(*n))),
			})
		}
	}

	delay := async.UniformDelays(*seed, 0.05)
	if *worst {
		delay = async.ConstantDelay(1)
	}
	sim, err := async.NewSimulator(procs, delay, crashes)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "asyncsim: %s, n=%d f=%d, %d crashes scheduled\n", *proc, *n, *f, len(crashes))
	fmt.Fprintf(out, "%8s  %10s  %s\n", "time", "deliveries", "diameter(correct)")
	horizon := float64(*f + 2)
	if *proc != "minrelay" {
		horizon = float64(*rounds + 2)
	}
	for t := 0.5; t <= horizon; t += 0.5 {
		sim.RunUntil(t)
		fmt.Fprintf(out, "%8.1f  %10d  %.6g\n", t, sim.Delivered(), sim.CorrectDiameter())
	}
	fmt.Fprintf(out, "\nfinal outputs (correct agents): %.4g\n", sim.CorrectOutputs())
	if *proc == "minrelay" {
		fmt.Fprintf(out, "Theorem 7: all correct agents equal by time f+1 = %d -> %v\n",
			*f+1, sim.CorrectDiameter() == 0)
	}
	return nil
}
