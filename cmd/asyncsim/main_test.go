package main

import (
	"strings"
	"testing"
)

func TestAsyncsimWorstCaseMinRelay(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-proc", "minrelay", "-n", "6", "-f", "3", "-worstcase"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, "Theorem 7: all correct agents equal by time f+1 = 4 -> true") {
		t.Errorf("Theorem 7 verdict missing:\n%s", got)
	}
	if !strings.Contains(got, "-1") {
		t.Errorf("minimum value did not propagate:\n%s", got)
	}
}

func TestAsyncsimRoundBased(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-proc", "midpoint", "-n", "5", "-f", "2", "-rounds", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "deliveries") {
		t.Errorf("missing table header:\n%s", sb.String())
	}
	var sb2 strings.Builder
	if err := run([]string{"-proc", "selectedmean", "-n", "6", "-f", "2", "-rounds", "6"}, &sb2); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncsimErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-proc", "bogus"}, &sb); err == nil {
		t.Error("bad process kind accepted")
	}
	if err := run([]string{"-n", "1"}, &sb); err == nil {
		t.Error("n=1 accepted")
	}
	if err := run([]string{"-n", "4", "-f", "4"}, &sb); err == nil {
		t.Error("f=n accepted")
	}
	if err := run([]string{"-proc", "selectedmean", "-n", "4", "-f", "0"}, &sb); err == nil {
		t.Error("selectedmean with f=0 accepted")
	}
}
