// Command decision sweeps the error tolerance ε and reports, for each of
// the paper's approximate-consensus settings, the decision time of the
// optimal decider next to the matching lower bound (Theorems 8-11).
//
// Usage:
//
//	decision                  run the built-in sweeps
//	decision -eps 1e-2,1e-4   use specific tolerances
//	decision -n 6             system size for the rooted-model sweep
//	decision -backend agents  force the interface-based reference backend
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/algorithms"
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "decision:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("decision", flag.ContinueOnError)
	fs.SetOutput(out)
	epsStr := fs.String("eps", "1e-1,1e-2,1e-3,1e-4,1e-5,1e-6", "comma-separated tolerances")
	n := fs.Int("n", 6, "system size for the non-split and rooted sweeps")
	backendStr := fs.String("backend", "auto", "execution backend: auto | agents | dense")
	if err := fs.Parse(args); err != nil {
		return err
	}
	backend, err := core.ParseBackend(*backendStr)
	if err != nil {
		return err
	}
	core.SetDefaultBackend(backend)

	epss, err := spec.ParseFloats(*epsStr)
	if err != nil {
		return err
	}
	for _, eps := range epss {
		if eps <= 0 || eps > 1 {
			return fmt.Errorf("tolerance %v outside (0,1]", eps)
		}
	}
	if *n < 4 {
		return fmt.Errorf("need n >= 4 for the rooted sweep, got %d", *n)
	}

	fmt.Fprintln(out, "n = 2, model {H0,H1,H2}, two-thirds decider (Theorem 8: >= log3(Δ/ε))")
	d2 := approx.Decider{Alg: algorithms.TwoThirds{}, Contraction: 1.0 / 3.0}
	printSweep(out, d2.Sweep([]float64{0, 1},
		func() core.PatternSource { return core.Fixed{G: graph.H(1)} },
		1, epss,
		func(eps float64) float64 { return approx.Theorem8LowerBound(1, eps) }))

	fmt.Fprintf(out, "\nn = %d, model deaf(K_n), midpoint decider (Theorem 9: >= log2(Δ/ε))\n", *n)
	inputs := make([]float64, *n)
	inputs[1] = 1
	for i := 2; i < *n; i++ {
		inputs[i] = 0.5
	}
	dm := approx.Decider{Alg: algorithms.Midpoint{}, Contraction: 0.5}
	printSweep(out, dm.Sweep(inputs,
		func() core.PatternSource { return core.Fixed{G: graph.Deaf(graph.Complete(*n), 0)} },
		1, epss,
		func(eps float64) float64 { return approx.Theorem9LowerBound(1, eps) }))

	fmt.Fprintf(out, "\nn = %d, Psi model, amortized midpoint decider (Theorem 10: >= (n-2)log2(Δ/ε))\n", *n)
	da := approx.Decider{
		Alg:         algorithms.AmortizedMidpoint{},
		Contraction: math.Pow(0.5, 1/float64(*n-1)),
	}
	printSweep(out, da.Sweep(inputs,
		func() core.PatternSource { return core.Cycle{Graphs: graph.PsiFamily(*n)} },
		1, epss,
		func(eps float64) float64 { return approx.Theorem10LowerBound(*n, 1, eps) }))
	return nil
}

func printSweep(out io.Writer, points []approx.SweepPoint) {
	fmt.Fprintf(out, "%10s  %14s  %14s  %12s  %4s\n", "ε", "lower bound", "decider rounds", "spread", "ok")
	for _, p := range points {
		fmt.Fprintf(out, "%10.2g  %14.3f  %14d  %12.4g  %4v\n",
			p.Eps, p.LowerBound, p.Rounds, p.Spread, p.OK)
	}
}
