// Command decision sweeps the error tolerance ε and reports, for each of
// the paper's approximate-consensus settings, the decision time of the
// optimal decider next to the matching lower bound (Theorems 8-11).
//
// It is a thin shell over consensus.DecisionSweep — the same sweeps the
// reprod query server serves at /api/v1/decision.
//
// Usage:
//
//	decision                  run the built-in sweeps
//	decision -eps 1e-2,1e-4   use specific tolerances
//	decision -n 6             system size for the rooted-model sweep
//	decision -backend agents  force the interface-based reference backend
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/consensus"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "decision:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("decision", flag.ContinueOnError)
	fs.SetOutput(out)
	epsStr := fs.String("eps", "1e-1,1e-2,1e-3,1e-4,1e-5,1e-6", "comma-separated tolerances")
	n := fs.Int("n", 6, "system size for the non-split and rooted sweeps")
	backend := consensus.BackendFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := backend.Install(); err != nil {
		return err
	}

	epss, err := consensus.ParseFloats(*epsStr)
	if err != nil {
		return err
	}
	for _, eps := range epss {
		if eps <= 0 || eps > 1 {
			return fmt.Errorf("tolerance %v outside (0,1]", eps)
		}
	}
	if *n < 4 {
		return fmt.Errorf("need n >= 4 for the rooted sweep, got %d", *n)
	}

	ctx := context.Background()
	inputs := consensus.SpreadInputs(*n)

	fmt.Fprintln(out, "n = 2, model {H0,H1,H2}, two-thirds decider (Theorem 8: >= log3(Δ/ε))")
	points, err := consensus.DecisionSweep(ctx, consensus.DecisionRequest{
		Model:       "twoagent",
		Algorithm:   "twothirds",
		Adversary:   "fixed:1", // H1 every round
		Inputs:      []float64{0, 1},
		Contraction: 1.0 / 3.0,
		Eps:         epss,
		Theorem:     "T8",
	})
	if err != nil {
		return err
	}
	printSweep(out, points)

	fmt.Fprintf(out, "\nn = %d, model deaf(K_n), midpoint decider (Theorem 9: >= log2(Δ/ε))\n", *n)
	points, err = consensus.DecisionSweep(ctx, consensus.DecisionRequest{
		Model:       fmt.Sprintf("deaf:%d", *n),
		Algorithm:   "midpoint",
		Adversary:   "fixed:0", // deaf(K_n, 0) every round
		Inputs:      inputs,
		Contraction: 0.5,
		Eps:         epss,
		Theorem:     "T9",
	})
	if err != nil {
		return err
	}
	printSweep(out, points)

	fmt.Fprintf(out, "\nn = %d, Psi model, amortized midpoint decider (Theorem 10: >= (n-2)log2(Δ/ε))\n", *n)
	points, err = consensus.DecisionSweep(ctx, consensus.DecisionRequest{
		Model:       fmt.Sprintf("psi:%d", *n),
		Algorithm:   "amortized",
		Adversary:   "cycle",
		Inputs:      inputs,
		Contraction: math.Pow(0.5, 1/float64(*n-1)),
		Eps:         epss,
		Theorem:     "T10",
	})
	if err != nil {
		return err
	}
	printSweep(out, points)
	return nil
}

func printSweep(out io.Writer, points []consensus.DecisionPoint) {
	fmt.Fprintf(out, "%10s  %14s  %14s  %12s  %4s\n", "ε", "lower bound", "decider rounds", "spread", "ok")
	for _, p := range points {
		fmt.Fprintf(out, "%10.2g  %14.3f  %14d  %12.4g  %4v\n",
			p.Eps, p.LowerBound, p.Rounds, p.Spread, p.OK)
	}
}
