package main

import (
	"strings"
	"testing"
)

func TestDecisionSweeps(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-eps", "1e-2,1e-4", "-n", "5"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, frag := range []string{
		"Theorem 8",
		"Theorem 9",
		"Theorem 10",
		"true",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("output missing %q:\n%s", frag, got)
		}
	}
	if strings.Contains(got, "false") {
		t.Errorf("some decider run failed:\n%s", got)
	}
}

func TestDecisionErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-eps", "x"}, &sb); err == nil {
		t.Error("bad eps list accepted")
	}
	if err := run([]string{"-eps", "2"}, &sb); err == nil {
		t.Error("eps > 1 accepted")
	}
	if err := run([]string{"-eps", "-0.5"}, &sb); err == nil {
		t.Error("negative eps accepted")
	}
	if err := run([]string{"-n", "3"}, &sb); err == nil {
		t.Error("n < 4 accepted")
	}
}
