// Command reprod serves the public consensus facade as a long-lived JSON
// query server: runs, sweeps, solvability and valency analysis,
// asynchronous crash-fault simulations, and the paper-reproduction
// experiments, with per-query timeouts and a response cache.
//
// Usage:
//
//	reprod                          serve on :8080
//	reprod -addr 127.0.0.1:9090     choose the listen address
//	reprod -query-timeout 10s       bound each query's computation
//	reprod -backend agents          force the reference execution backend
//
// Endpoints (see package repro/consensus for the payloads):
//
//	GET  /healthz
//	GET  /api/v1/registry
//	POST /api/v1/run
//	POST /api/v1/sweep
//	GET  /api/v1/solvability?model=SPEC
//	POST /api/v1/valency
//	POST /api/v1/decision
//	POST /api/v1/async
//	GET  /api/v1/experiments
//	POST /api/v1/experiment
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/consensus"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reprod:", err)
		os.Exit(1)
	}
}

// newServer builds the server exactly as main serves it; the handler
// tests drive it directly.
func newServer(queryTimeout time.Duration, cacheSize int) *consensus.Server {
	return consensus.NewServer(
		consensus.ServerTimeout(queryTimeout),
		consensus.ServerCacheSize(cacheSize),
	)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("reprod", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8080", "listen address")
	queryTimeout := fs.Duration("query-timeout", 30*time.Second, "per-query computation budget")
	cacheSize := fs.Int("cache", 1024, "response cache entries (0 disables)")
	backend := consensus.BackendFlag(fs)
	batchPar := consensus.BatchParallelismFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := backend.Install(); err != nil {
		return err
	}
	if err := batchPar.Install(); err != nil {
		return err
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(*queryTimeout, *cacheSize),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(out, "reprod: serving on %s (backend %s, batch parallelism %d, query timeout %s)\n",
		*addr, backend.Value(), batchPar.Value(), *queryTimeout)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "reprod: shut down")
	return nil
}
