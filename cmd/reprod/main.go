// Command reprod serves the public consensus facade as a long-lived JSON
// query server: runs, sweeps, solvability and valency analysis,
// asynchronous crash-fault simulations, and the paper-reproduction
// experiments, with per-query timeouts and a response cache. It also
// hosts both halves of the distributed sweep service (package
// repro/consensus/distributed): -worker adds the shard-execution
// endpoint, -coordinator serves the fan-out side instead.
//
// Usage:
//
//	reprod                          serve on :8080
//	reprod -addr 127.0.0.1:9090     choose the listen address
//	reprod -query-timeout 10s       bound each query's computation
//	reprod -backend agents          force the reference execution backend
//	reprod -drain-timeout 10s       shutdown drain budget (then in-flight
//	                                queries are context-cancelled)
//	reprod -debug-addr :6060        also serve net/http/pprof on a second
//	                                listener (off unless set)
//
//	reprod -worker                  serve the worker surface (adds POST /api/v1/shard)
//	reprod -worker -announce URL    ...and register with the coordinator at URL
//	reprod -coordinator -workers http://h1:8081,http://h2:8081
//	                                serve the coordinator, pinning two workers
//
// Endpoints (see packages repro/consensus and repro/consensus/distributed
// for the payloads):
//
//	GET  /healthz
//	GET  /metrics                 (Prometheus text, every mode)
//	GET  /api/v1/status
//	GET  /api/v1/registry
//	POST /api/v1/run
//	POST /api/v1/sweep
//	POST /api/v1/shard            (-worker)
//	POST /api/v1/sweep/stream     (-coordinator, SSE)
//	POST /api/v1/workers          (-coordinator)
//	GET  /api/v1/solvability?model=SPEC
//	POST /api/v1/valency
//	POST /api/v1/decision
//	POST /api/v1/async
//	POST /api/v1/scenario
//	GET  /api/v1/experiments
//	POST /api/v1/experiment
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/consensus"
	"repro/consensus/distributed"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reprod:", err)
		os.Exit(1)
	}
}

// newServer builds the server exactly as main serves it; the handler
// tests drive it directly.
func newServer(queryTimeout time.Duration, cacheSize int) *consensus.Server {
	return consensus.NewServer(
		consensus.ServerTimeout(queryTimeout),
		consensus.ServerCacheSize(cacheSize),
	)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("reprod", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8080", "listen address")
	queryTimeout := fs.Duration("query-timeout", 30*time.Second, "per-query computation budget")
	cacheSize := fs.Int("cache", 1024, "response cache entries (0 disables)")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Second,
		"shutdown drain budget; past it in-flight queries are context-cancelled")
	debugAddr := fs.String("debug-addr", "",
		"serve net/http/pprof on this second listen address (disabled when empty)")

	worker := fs.Bool("worker", false, "serve the distributed worker surface (adds POST /api/v1/shard)")
	announce := fs.String("announce", "", "worker: coordinator base URL to register with at startup")
	selfURL := fs.String("self", "", "worker: own base URL to announce (default derived from -addr)")

	coordinator := fs.Bool("coordinator", false, "serve the distributed coordinator instead of the query server")
	workerList := fs.String("workers", "", "coordinator: comma-separated worker base URLs to pin")
	shardSpecs := fs.Int("shard-specs", distributed.DefaultShardSpecs, "coordinator: specs per shard")
	queueCap := fs.Int("queue-cap", distributed.DefaultQueueCapacity,
		"coordinator: admitted-shard queue bound (full queue answers 429)")
	shardRetries := fs.Int("shard-retries", distributed.DefaultShardAttempts,
		"coordinator: attempts per shard (reroutes across workers)")

	backend := consensus.BackendFlag(fs)
	batchPar := consensus.BatchParallelismFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *worker && *coordinator {
		return fmt.Errorf("-worker and -coordinator are mutually exclusive")
	}
	if err := backend.Install(); err != nil {
		return err
	}
	if err := batchPar.Install(); err != nil {
		return err
	}

	// Structured logger for the daemon's own reporting; the coordinator
	// shares it, so its dispatch logs carry the same stream and format.
	logger := slog.New(slog.NewTextHandler(out, nil))

	// Build the mode's handler and its startup/shutdown reporting.
	// cacheKVs snapshots the mode's cache counters as key=value pairs
	// for the startup and shutdown log lines.
	var (
		handler    http.Handler
		mode       string
		cacheKVs   func() []any
		coord      *distributed.Coordinator
		workerSide *distributed.Worker
	)
	switch {
	case *coordinator:
		var urls []string
		for _, u := range strings.Split(*workerList, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		coord = distributed.NewCoordinator(
			distributed.CoordinatorWorkers(urls...),
			distributed.CoordinatorShardSpecs(*shardSpecs),
			distributed.CoordinatorQueueCapacity(*queueCap),
			distributed.CoordinatorRetry(*shardRetries, distributed.DefaultRetryBase),
			distributed.CoordinatorShardTimeout(*queryTimeout),
			distributed.CoordinatorLogger(logger),
		)
		defer coord.Close()
		handler = coord
		mode = fmt.Sprintf("coordinator (%d workers pinned, shard specs %d, queue cap %d)",
			coord.WorkerCount(), *shardSpecs, *queueCap)
		cacheKVs = func() []any {
			st := coord.Status()
			return []any{"cache", "result_store",
				"entries", st.Store.Entries, "capacity", st.Store.Capacity,
				"hits", st.Store.Hits, "misses", st.Store.Misses,
				"evictions", st.Store.Evictions, "hit_rate", st.StoreHitRate}
		}
	case *worker:
		workerSide = distributed.NewWorker(distributed.WorkerTimeout(*queryTimeout))
		handler = workerSide
		mode = "worker"
		cacheKVs = func() []any {
			sc := workerSide.SweepCacheCounters()
			return []any{"cache", "sweep",
				"entries", sc.Entries, "capacity", sc.Capacity,
				"hits", sc.Hits, "misses", sc.Misses, "evictions", sc.Evictions}
		}
	default:
		qs := newServer(*queryTimeout, *cacheSize)
		handler = qs
		mode = "server"
		cacheKVs = func() []any {
			st := qs.Status()
			return []any{"cache", "response+sweep",
				"response_entries", st.ResponseCache.Entries,
				"response_capacity", st.ResponseCache.Capacity,
				"sweep_entries", st.SweepCache.Entries,
				"sweep_capacity", st.SweepCache.Capacity,
				"sweep_hit_rate", st.SweepHitRate}
		}
	}

	// Every request context derives from baseCtx so an expired drain can
	// cancel whatever is still computing.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("serving", "mode", mode, "addr", *addr,
		"backend", backend.Value(), "batch_parallelism", batchPar.Value(),
		"query_timeout", *queryTimeout)
	logger.Info("cache counters", append([]any{"phase", "startup"}, cacheKVs()...)...)

	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		defer debugSrv.Close()
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		logger.Info("debug listener serving pprof", "addr", *debugAddr)
	}

	if *worker && *announce != "" {
		self := *selfURL
		if self == "" {
			self = deriveSelfURL(*addr)
		}
		go func() {
			if err := announceWorker(ctx, *announce, self); err != nil {
				logger.Error("announce failed", "coordinator", *announce, "err", err)
			} else {
				logger.Info("registered with coordinator", "self", self, "coordinator", *announce)
			}
		}()
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		// Drain budget spent: cancel in-flight query contexts, then
		// force-close the remaining connections.
		cancelBase()
		_ = srv.Close()
		logger.Warn("drain timed out, in-flight queries cancelled", "drain_timeout", *drainTimeout)
		return nil
	}
	logger.Info("cache counters", append([]any{"phase", "shutdown"}, cacheKVs()...)...)
	logger.Info("shut down")
	return nil
}

// deriveSelfURL guesses the worker's announceable URL from its listen
// address; -self overrides when the guess is wrong (e.g. multi-host).
func deriveSelfURL(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "http://" + addr
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// announceWorker registers self with the coordinator, retrying briefly
// so worker-before-coordinator startup order still converges.
func announceWorker(ctx context.Context, coordURL, self string) error {
	body, err := json.Marshal(distributed.RegisterRequest{URL: self})
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(time.Duration(attempt) * 500 * time.Millisecond)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost,
			strings.TrimRight(coordURL, "/")+"/api/v1/workers", bytes.NewReader(body))
		if rerr != nil {
			return rerr
		}
		req.Header.Set("Content-Type", "application/json")
		resp, rerr := http.DefaultClient.Do(req)
		if rerr != nil {
			lastErr = rerr
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return nil
		}
		lastErr = fmt.Errorf("coordinator answered %s", resp.Status)
	}
	return lastErr
}
