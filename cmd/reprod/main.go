// Command reprod serves the public consensus facade as a long-lived JSON
// query server: runs, sweeps, solvability and valency analysis,
// asynchronous crash-fault simulations, and the paper-reproduction
// experiments, with per-query timeouts and a response cache. It also
// hosts both halves of the distributed sweep service (package
// repro/consensus/distributed): -worker adds the shard-execution
// endpoint, -coordinator serves the fan-out side instead.
//
// Usage:
//
//	reprod                          serve on :8080
//	reprod -addr 127.0.0.1:9090     choose the listen address
//	reprod -query-timeout 10s       bound each query's computation
//	reprod -backend agents          force the reference execution backend
//	reprod -drain-timeout 10s       shutdown drain budget (then in-flight
//	                                queries are context-cancelled)
//
//	reprod -worker                  serve the worker surface (adds POST /api/v1/shard)
//	reprod -worker -announce URL    ...and register with the coordinator at URL
//	reprod -coordinator -workers http://h1:8081,http://h2:8081
//	                                serve the coordinator, pinning two workers
//
// Endpoints (see packages repro/consensus and repro/consensus/distributed
// for the payloads):
//
//	GET  /healthz
//	GET  /api/v1/status
//	GET  /api/v1/registry
//	POST /api/v1/run
//	POST /api/v1/sweep
//	POST /api/v1/shard            (-worker)
//	POST /api/v1/sweep/stream     (-coordinator, SSE)
//	POST /api/v1/workers          (-coordinator)
//	GET  /api/v1/solvability?model=SPEC
//	POST /api/v1/valency
//	POST /api/v1/decision
//	POST /api/v1/async
//	POST /api/v1/scenario
//	GET  /api/v1/experiments
//	POST /api/v1/experiment
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/consensus"
	"repro/consensus/distributed"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reprod:", err)
		os.Exit(1)
	}
}

// newServer builds the server exactly as main serves it; the handler
// tests drive it directly.
func newServer(queryTimeout time.Duration, cacheSize int) *consensus.Server {
	return consensus.NewServer(
		consensus.ServerTimeout(queryTimeout),
		consensus.ServerCacheSize(cacheSize),
	)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("reprod", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8080", "listen address")
	queryTimeout := fs.Duration("query-timeout", 30*time.Second, "per-query computation budget")
	cacheSize := fs.Int("cache", 1024, "response cache entries (0 disables)")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Second,
		"shutdown drain budget; past it in-flight queries are context-cancelled")

	worker := fs.Bool("worker", false, "serve the distributed worker surface (adds POST /api/v1/shard)")
	announce := fs.String("announce", "", "worker: coordinator base URL to register with at startup")
	selfURL := fs.String("self", "", "worker: own base URL to announce (default derived from -addr)")

	coordinator := fs.Bool("coordinator", false, "serve the distributed coordinator instead of the query server")
	workerList := fs.String("workers", "", "coordinator: comma-separated worker base URLs to pin")
	shardSpecs := fs.Int("shard-specs", distributed.DefaultShardSpecs, "coordinator: specs per shard")
	queueCap := fs.Int("queue-cap", distributed.DefaultQueueCapacity,
		"coordinator: admitted-shard queue bound (full queue answers 429)")
	shardRetries := fs.Int("shard-retries", distributed.DefaultShardAttempts,
		"coordinator: attempts per shard (reroutes across workers)")

	backend := consensus.BackendFlag(fs)
	batchPar := consensus.BatchParallelismFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *worker && *coordinator {
		return fmt.Errorf("-worker and -coordinator are mutually exclusive")
	}
	if err := backend.Install(); err != nil {
		return err
	}
	if err := batchPar.Install(); err != nil {
		return err
	}

	// Build the mode's handler and its startup/shutdown reporting.
	var (
		handler    http.Handler
		mode       string
		cacheLine  func() string
		coord      *distributed.Coordinator
		workerSide *distributed.Worker
	)
	switch {
	case *coordinator:
		var urls []string
		for _, u := range strings.Split(*workerList, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		coord = distributed.NewCoordinator(
			distributed.CoordinatorWorkers(urls...),
			distributed.CoordinatorShardSpecs(*shardSpecs),
			distributed.CoordinatorQueueCapacity(*queueCap),
			distributed.CoordinatorRetry(*shardRetries, distributed.DefaultRetryBase),
			distributed.CoordinatorShardTimeout(*queryTimeout),
		)
		defer coord.Close()
		handler = coord
		mode = fmt.Sprintf("coordinator (%d workers pinned, shard specs %d, queue cap %d)",
			coord.WorkerCount(), *shardSpecs, *queueCap)
		cacheLine = func() string {
			st := coord.Status()
			return fmt.Sprintf("result store %d/%d entries (%d hits, %d misses, %d evictions)",
				st.Store.Entries, st.Store.Capacity, st.Store.Hits, st.Store.Misses, st.Store.Evictions)
		}
	case *worker:
		workerSide = distributed.NewWorker(distributed.WorkerTimeout(*queryTimeout))
		handler = workerSide
		mode = "worker"
		cacheLine = func() string {
			sc := workerSide.SweepCacheCounters()
			return fmt.Sprintf("sweep cache %d/%d entries (%d hits, %d misses, %d evictions)",
				sc.Entries, sc.Capacity, sc.Hits, sc.Misses, sc.Evictions)
		}
	default:
		qs := newServer(*queryTimeout, *cacheSize)
		handler = qs
		mode = "server"
		cacheLine = func() string {
			st := qs.Status()
			return fmt.Sprintf("response cache %d/%d entries, sweep cache %d/%d entries (hit rate %.2f)",
				st.ResponseCache.Entries, st.ResponseCache.Capacity,
				st.SweepCache.Entries, st.SweepCache.Capacity, st.SweepHitRate)
		}
	}

	// Every request context derives from baseCtx so an expired drain can
	// cancel whatever is still computing.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(out, "reprod: serving %s on %s (backend %s, batch parallelism %d, query timeout %s)\n",
		mode, *addr, backend.Value(), batchPar.Value(), *queryTimeout)
	fmt.Fprintf(out, "reprod: %s\n", cacheLine())

	if *worker && *announce != "" {
		self := *selfURL
		if self == "" {
			self = deriveSelfURL(*addr)
		}
		go func() {
			if err := announceWorker(ctx, *announce, self); err != nil {
				fmt.Fprintf(out, "reprod: announce to %s failed: %v\n", *announce, err)
			} else {
				fmt.Fprintf(out, "reprod: registered %s with coordinator %s\n", self, *announce)
			}
		}()
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		// Drain budget spent: cancel in-flight query contexts, then
		// force-close the remaining connections.
		cancelBase()
		_ = srv.Close()
		fmt.Fprintf(out, "reprod: drain timed out after %s, in-flight queries cancelled\n", *drainTimeout)
		return nil
	}
	fmt.Fprintf(out, "reprod: %s\n", cacheLine())
	fmt.Fprintln(out, "reprod: shut down")
	return nil
}

// deriveSelfURL guesses the worker's announceable URL from its listen
// address; -self overrides when the guess is wrong (e.g. multi-host).
func deriveSelfURL(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "http://" + addr
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// announceWorker registers self with the coordinator, retrying briefly
// so worker-before-coordinator startup order still converges.
func announceWorker(ctx context.Context, coordURL, self string) error {
	body, err := json.Marshal(distributed.RegisterRequest{URL: self})
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(time.Duration(attempt) * 500 * time.Millisecond)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost,
			strings.TrimRight(coordURL, "/")+"/api/v1/workers", bytes.NewReader(body))
		if rerr != nil {
			return rerr
		}
		req.Header.Set("Content-Type", "application/json")
		resp, rerr := http.DefaultClient.Do(req)
		if rerr != nil {
			lastErr = rerr
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return nil
		}
		lastErr = fmt.Errorf("coordinator answered %s", resp.Status)
	}
	return lastErr
}
