package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// The acceptance path: the served handler answers a solvability query and
// a sweep query end-to-end.
func TestReprodSolvabilityAndSweepEndToEnd(t *testing.T) {
	ts := httptest.NewServer(newServer(time.Minute, 64))
	defer ts.Close()

	// Solvability of the two-agent model: rooted, 1/3 bound via Theorem 1.
	resp, err := http.Get(ts.URL + "/api/v1/solvability?model=twoagent")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solvability status %d", resp.StatusCode)
	}
	var solv struct {
		N         int     `json:"n"`
		Rooted    bool    `json:"rooted"`
		BoundRate float64 `json:"bound_rate"`
		Theorem   string  `json:"bound_theorem"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&solv); err != nil {
		t.Fatal(err)
	}
	if solv.N != 2 || !solv.Rooted {
		t.Errorf("solvability report: %+v", solv)
	}
	if diff := solv.BoundRate - 1.0/3.0; diff < -1e-12 || diff > 1e-12 {
		t.Errorf("bound rate %v, want 1/3 (via %s)", solv.BoundRate, solv.Theorem)
	}

	// A sweep racing two algorithms against the greedy adversary.
	body := `{"specs": [
		{"model": "twoagent", "algorithm": "twothirds", "adversary": "greedy", "rounds": 4, "depth": 4},
		{"model": "twoagent", "algorithm": "midpoint", "adversary": "greedy", "rounds": 4, "depth": 4}
	]}`
	post := func() (cacheHeader string, results []struct {
		Cached  bool `json:"cached"`
		Summary *struct {
			Algorithm     string  `json:"algorithm"`
			GeometricRate float64 `json:"geometric_rate"`
		} `json:"summary"`
		Err string `json:"error"`
	}) {
		resp, err := http.Post(ts.URL+"/api/v1/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep status %d", resp.StatusCode)
		}
		var payload struct {
			Results json.RawMessage `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(payload.Results, &results); err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("X-Repro-Cache"), results
	}

	cacheHeader, results := post()
	if cacheHeader != "miss" {
		t.Errorf("first sweep X-Repro-Cache = %q, want miss", cacheHeader)
	}
	if len(results) != 2 {
		t.Fatalf("got %d sweep results, want 2", len(results))
	}
	for i, r := range results {
		if r.Err != "" {
			t.Fatalf("sweep entry %d failed: %s", i, r.Err)
		}
		if r.Summary == nil {
			t.Fatalf("sweep entry %d has no summary", i)
		}
	}
	// Two-thirds decays at the certified 1/3 optimum; midpoint is held at
	// 1/2 — the Theorem 1 separation, served over HTTP.
	if got := results[0].Summary.GeometricRate; got < 0.32 || got > 0.34 {
		t.Errorf("two-thirds geometric rate %v, want ~1/3", got)
	}
	if got := results[1].Summary.GeometricRate; got < 0.49 || got > 0.51 {
		t.Errorf("midpoint geometric rate %v, want ~1/2", got)
	}

	// The identical query must be a response-cache hit.
	cacheHeader, _ = post()
	if cacheHeader != "hit" {
		t.Errorf("second sweep X-Repro-Cache = %q, want hit", cacheHeader)
	}
}

func TestReprodRegistryAndErrors(t *testing.T) {
	ts := httptest.NewServer(newServer(time.Minute, 0))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/api/v1/registry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reg struct {
		Algorithms  []struct{ Name string } `json:"algorithms"`
		Models      []struct{ Name string } `json:"models"`
		Adversaries []struct{ Name string } `json:"adversaries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	if len(reg.Algorithms) < 9 || len(reg.Models) < 8 || len(reg.Adversaries) < 6 {
		t.Errorf("registry too small: %d algorithms, %d models, %d adversaries",
			len(reg.Algorithms), len(reg.Models), len(reg.Adversaries))
	}

	bad, err := http.Get(ts.URL + "/api/v1/solvability?model=bogus")
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus model status %d, want 400", bad.StatusCode)
	}
}

func TestReprodFlagErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-backend", "bogus"}, &sb); err == nil {
		t.Error("bad backend accepted")
	}
}
