package main

import (
	"strings"
	"testing"
)

func TestContractionGreedyTwoThirds(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-model", "twoagent", "-alg", "twothirds", "-rounds", "4", "-depth", "4"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, frag := range []string{
		"proven contraction lower bound: 0.333333 via Theorem 1",
		"fitted per-round value contraction: 0.333333",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("output missing %q:\n%s", frag, got)
		}
	}
}

func TestContractionRandomSourceAndInputs(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-model", "deaf:3", "-alg", "mean", "-adversary", "random",
		"-inputs", "0,1,0.5", "-rounds", "3", "-seed", "7"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "round") {
		t.Errorf("missing table header:\n%s", sb.String())
	}
}

func TestContractionErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "bogus"}, &sb); err == nil {
		t.Error("bad model accepted")
	}
	if err := run([]string{"-alg", "bogus"}, &sb); err == nil {
		t.Error("bad algorithm accepted")
	}
	if err := run([]string{"-adversary", "bogus"}, &sb); err == nil {
		t.Error("bad adversary accepted")
	}
	if err := run([]string{"-model", "deaf:3", "-inputs", "0,1"}, &sb); err == nil {
		t.Error("wrong input arity accepted")
	}
	if err := run([]string{"-model", "twoagent", "-alg", "twothirds", "-inputs", "0,x"}, &sb); err == nil {
		t.Error("malformed inputs accepted")
	}
}
