// Command contraction runs an asymptotic consensus algorithm against a
// pattern source — the greedy lower-bound adversary, a random scheduler,
// or a round-robin — and reports the per-round value diameters, the
// certified valency-diameter floor, and the fitted contraction rate next
// to the model's proven lower bound.
//
// Usage:
//
//	contraction -model twoagent -alg twothirds -inputs 0,1 -rounds 8
//	contraction -model deaf:3 -alg midpoint -adversary greedy -depth 3
//	contraction -model psi:5 -alg amortized -adversary random -rounds 30
//	contraction -model deaf:8 -alg midpoint -adversary cycle -backend=agents
//
// The -backend flag selects the execution engine: "dense" (or the default
// "auto") races on the flat struct-of-arrays kernel whenever the
// algorithm and scheduler support it, "agents" forces the interface-based
// reference path; results are bit-identical.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/valency"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "contraction:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("contraction", flag.ContinueOnError)
	fs.SetOutput(out)
	modelSpec := fs.String("model", "twoagent", "model spec (see internal/spec)")
	algSpec := fs.String("alg", "midpoint", "algorithm spec")
	advKind := fs.String("adversary", "greedy", "pattern source: greedy | random | cycle")
	inputsStr := fs.String("inputs", "", "comma-separated initial values (default: 0,1,0.5,...)")
	rounds := fs.Int("rounds", 8, "number of rounds")
	depth := fs.Int("depth", 3, "valency exploration depth for the greedy adversary")
	seed := fs.Int64("seed", 1, "seed for the random scheduler")
	backendStr := fs.String("backend", "auto", "execution backend: auto | agents | dense")
	if err := fs.Parse(args); err != nil {
		return err
	}

	backend, err := core.ParseBackend(*backendStr)
	if err != nil {
		return err
	}
	core.SetDefaultBackend(backend)

	m, err := spec.ParseModel(*modelSpec)
	if err != nil {
		return err
	}
	alg, err := spec.ParseAlgorithm(*algSpec, m.N())
	if err != nil {
		return err
	}
	inputs := make([]float64, m.N())
	if *inputsStr != "" {
		inputs, err = spec.ParseFloats(*inputsStr)
		if err != nil {
			return err
		}
		if len(inputs) != m.N() {
			return fmt.Errorf("got %d inputs for %d agents", len(inputs), m.N())
		}
	} else {
		inputs[1%m.N()] = 1
		for i := 2; i < m.N(); i++ {
			inputs[i] = 0.5
		}
	}

	est := valency.NewEstimator(m, *depth, alg.Convex())
	newSrc := func() (core.PatternSource, error) {
		switch *advKind {
		case "greedy":
			return &adversary.Greedy{Est: est}, nil
		case "random":
			return core.RandomFromModel{Model: m, Rng: rand.New(rand.NewSource(*seed))}, nil
		case "cycle":
			return core.Cycle{Graphs: m.Graphs()}, nil
		default:
			return nil, fmt.Errorf("unknown adversary %q", *advKind)
		}
	}
	src, err := newSrc()
	if err != nil {
		return err
	}

	bound := m.ContractionLowerBound()
	fmt.Fprintf(out, "model %s (n=%d, %d graphs), algorithm %s, adversary %s\n",
		*modelSpec, m.N(), m.Size(), alg.Name(), *advKind)
	fmt.Fprintf(out, "proven contraction lower bound: %.6g via %s\n\n", bound.Rate, bound.Theorem)

	fmt.Fprintf(out, "%5s  %-28s  %12s  %12s\n", "round", "graph", "Δ(y)", "δ-floor")
	printRound := func(round int, name string, diam, floor float64) {
		if len(name) > 28 {
			name = name[:25] + "..."
		}
		fmt.Fprintf(out, "%5d  %-28s  %12.6g  %12.6g\n", round, name, diam, floor)
	}
	if d, ok := core.AsDense(alg); ok && backend.DenseEnabled() && core.IsOblivious(src) {
		// Dense race loop: flat state per round; configurations are only
		// materialized for the (exploration-dominated) valency floor.
		r := core.NewDenseRunner(d, inputs)
		printRound(0, "-", r.Diameter(), est.DeltaLower(r.Config()))
		for round := 1; round <= *rounds; round++ {
			g := src.Next(round, nil)
			r.Step(g)
			floor := 0.0
			if alg.Convex() {
				floor = est.DeltaLower(r.Config())
			}
			printRound(round, g.String(), r.Diameter(), floor)
		}
	} else {
		c := core.NewConfig(alg, inputs)
		printRound(0, "-", c.Diameter(), est.DeltaLower(c))
		for round := 1; round <= *rounds; round++ {
			g := src.Next(round, c)
			c = c.Step(g)
			floor := 0.0
			if alg.Convex() {
				floor = est.DeltaLower(c)
			}
			printRound(round, g.String(), c.Diameter(), floor)
		}
	}

	src2, err := newSrc()
	if err != nil {
		return err
	}
	tr := core.RunConfig(alg.Name(), core.NewConfig(alg, inputs), src2, *rounds)
	fmt.Fprintf(out, "\nfitted per-round value contraction: %.6g (worst single round %.6g)\n",
		tr.GeometricRate(), tr.WorstRoundRatio())
	return nil
}
