// Command contraction runs an asymptotic consensus algorithm against a
// pattern source — the greedy lower-bound adversary, a random scheduler,
// or a round-robin — and reports the per-round value diameters, the
// certified valency-diameter floor, and the fitted contraction rate next
// to the model's proven lower bound.
//
// It is a thin shell over the public consensus facade: one streaming
// session with the valency floor enabled.
//
// Usage:
//
//	contraction -model twoagent -alg twothirds -inputs 0,1 -rounds 8
//	contraction -model deaf:3 -alg midpoint -adversary greedy -depth 3
//	contraction -model psi:5 -alg amortized -adversary random -rounds 30
//	contraction -model deaf:8 -alg midpoint -adversary cycle -backend=agents
//
// The -backend flag selects the execution engine: "dense" (or the default
// "auto") races on the flat struct-of-arrays kernel whenever the
// algorithm and scheduler support it, "agents" forces the interface-based
// reference path; results are bit-identical.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/consensus"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "contraction:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("contraction", flag.ContinueOnError)
	fs.SetOutput(out)
	modelSpec := fs.String("model", "twoagent", "model spec (see the consensus Models registry)")
	algSpec := fs.String("alg", "midpoint", "algorithm spec")
	advKind := fs.String("adversary", "greedy", "pattern source: greedy | random | cycle | ...")
	inputsStr := fs.String("inputs", "", "comma-separated initial values (default: 0,1,0.5,...)")
	rounds := fs.Int("rounds", 8, "number of rounds")
	depth := fs.Int("depth", 3, "valency exploration depth for the greedy adversary")
	seed := fs.Int64("seed", 1, "seed for the random scheduler")
	backend := consensus.BackendFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := backend.Install(); err != nil {
		return err
	}

	opts := []consensus.Option{
		consensus.WithModel(*modelSpec),
		consensus.WithAlgorithm(*algSpec),
		consensus.WithAdversary(*advKind),
		consensus.WithRounds(*rounds),
		consensus.WithDepth(*depth),
		consensus.WithSeed(*seed),
		consensus.WithValencyFloor(),
	}
	if *inputsStr != "" {
		inputs, err := consensus.ParseFloats(*inputsStr)
		if err != nil {
			return err
		}
		opts = append(opts, consensus.WithInputs(inputs...))
	}
	session, err := consensus.New(opts...)
	if err != nil {
		return err
	}

	_, n, graphs, _ := session.ModelInfo()
	rate, theorem, _, _ := session.ContractionBound()
	fmt.Fprintf(out, "model %s (n=%d, %d graphs), algorithm %s, adversary %s\n",
		*modelSpec, n, graphs, session.Algorithm(), *advKind)
	fmt.Fprintf(out, "proven contraction lower bound: %.6g via %s\n\n", rate, theorem)

	fmt.Fprintf(out, "%5s  %-28s  %12s  %12s\n", "round", "graph", "Δ(y)", "δ-floor")
	printRound := func(round int, name string, diam, floor float64) {
		if name == "" {
			name = "-"
		}
		if len(name) > 28 {
			name = name[:25] + "..."
		}
		fmt.Fprintf(out, "%5d  %-28s  %12.6g  %12.6g\n", round, name, diam, floor)
	}

	// One streaming pass: the per-round table and the fitted contraction
	// come from the same race.
	var diameters []float64
	for snap, err := range session.Rounds(context.Background()) {
		if err != nil {
			return err
		}
		printRound(snap.Round, snap.Graph, snap.Diameter, snap.Floor)
		diameters = append(diameters, snap.Diameter)
	}

	fmt.Fprintf(out, "\nfitted per-round value contraction: %.6g (worst single round %.6g)\n",
		consensus.GeometricRate(diameters), consensus.WorstRoundRatio(diameters))
	return nil
}
