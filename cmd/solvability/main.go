// Command solvability analyzes a network model: rootedness (asymptotic
// consensus solvability), non-splitness, alpha-diameter, beta-equivalence
// classes, source-incompatibility, exact-consensus solvability, and the
// strongest contraction-rate lower bound the paper proves for it.
//
// It is a thin shell over consensus.Solvability — the same report the
// reprod query server serves at /api/v1/solvability.
//
// Usage:
//
//	solvability -model twoagent
//	solvability -model deaf:4
//	solvability -model na:4,1
//	solvability -model 'edges:3;0>1,1>2,2>0'
//	solvability -model psi:6 -graphs
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/consensus"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "solvability:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("solvability", flag.ContinueOnError)
	fs.SetOutput(out)
	modelSpec := fs.String("model", "twoagent", "model spec (see the consensus Models registry)")
	showGraphs := fs.Bool("graphs", false, "print every member graph")
	if err := fs.Parse(args); err != nil {
		return err
	}

	r, err := consensus.Solvability(context.Background(), *modelSpec)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "model %q: n=%d agents, %d graphs\n", *modelSpec, r.N, r.Graphs)
	if *showGraphs {
		for i, name := range r.GraphNames {
			fmt.Fprintf(out, "  [%d] %v  roots=%v\n", i, name, r.GraphRoots[i])
		}
	}

	fmt.Fprintf(out, "rooted (asymptotic consensus solvable):  %v\n", r.Rooted)
	fmt.Fprintf(out, "non-split:                               %v\n", r.NonSplit)

	if r.AlphaFinite {
		fmt.Fprintf(out, "alpha-diameter D:                        %d\n", r.AlphaDiameter)
	} else {
		fmt.Fprintf(out, "alpha-diameter D:                        infinite\n")
	}

	fmt.Fprintf(out, "beta-equivalence classes:                %d\n", len(r.BetaClasses))
	for i, class := range r.BetaClasses {
		fmt.Fprintf(out, "  class %d: graphs %v, source-incompatible: %v\n",
			i, class, r.SourceIncompatible[i])
	}

	fmt.Fprintf(out, "exact consensus solvable (Theorem 19):   %v\n", r.ExactConsensusSolvable)

	if r.BoundTheorem == "vacuous" {
		fmt.Fprintf(out, "contraction-rate lower bound:            n/a — %s\n", r.BoundDetail)
		return nil
	}
	fmt.Fprintf(out, "contraction-rate lower bound:            %.6g\n", r.BoundRate)
	fmt.Fprintf(out, "  via %s — %s\n", r.BoundTheorem, r.BoundDetail)
	return nil
}
