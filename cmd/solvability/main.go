// Command solvability analyzes a network model: rootedness (asymptotic
// consensus solvability), non-splitness, alpha-diameter, beta-equivalence
// classes, source-incompatibility, exact-consensus solvability, and the
// strongest contraction-rate lower bound the paper proves for it.
//
// Usage:
//
//	solvability -model twoagent
//	solvability -model deaf:4
//	solvability -model na:4,1
//	solvability -model 'edges:3;0>1,1>2,2>0'
//	solvability -model psi:6 -graphs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/graph"
	"repro/internal/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "solvability:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("solvability", flag.ContinueOnError)
	fs.SetOutput(out)
	modelSpec := fs.String("model", "twoagent", "model spec (see internal/spec)")
	showGraphs := fs.Bool("graphs", false, "print every member graph")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := spec.ParseModel(*modelSpec)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "model %q: n=%d agents, %d graphs\n", *modelSpec, m.N(), m.Size())
	if *showGraphs {
		for i, g := range m.Graphs() {
			fmt.Fprintf(out, "  [%d] %v  roots=%v\n", i, g, graph.MaskToNodes(g.Roots()))
		}
	}

	fmt.Fprintf(out, "rooted (asymptotic consensus solvable):  %v\n", m.IsRooted())
	fmt.Fprintf(out, "non-split:                               %v\n", m.IsNonSplit())

	if d, finite := m.AlphaDiameter(); finite {
		fmt.Fprintf(out, "alpha-diameter D:                        %d\n", d)
	} else {
		fmt.Fprintf(out, "alpha-diameter D:                        infinite\n")
	}

	classes := m.BetaClasses()
	fmt.Fprintf(out, "beta-equivalence classes:                %d\n", len(classes))
	for i, class := range classes {
		fmt.Fprintf(out, "  class %d: graphs %v, source-incompatible: %v\n",
			i, class, m.SourceIncompatible(class))
	}

	fmt.Fprintf(out, "exact consensus solvable (Theorem 19):   %v\n", m.ExactConsensusSolvable())

	b := m.ContractionLowerBound()
	if b.Theorem == "vacuous" {
		fmt.Fprintf(out, "contraction-rate lower bound:            n/a — %s\n", b.Detail)
		return nil
	}
	fmt.Fprintf(out, "contraction-rate lower bound:            %.6g\n", b.Rate)
	fmt.Fprintf(out, "  via %s — %s\n", b.Theorem, b.Detail)
	return nil
}
