package main

import (
	"strings"
	"testing"
)

func TestSolvabilityTwoAgent(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "twoagent"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, frag := range []string{
		"n=2 agents, 3 graphs",
		"alpha-diameter D:                        2",
		"exact consensus solvable (Theorem 19):   false",
		"0.333333",
		"Theorem 1",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("output missing %q:\n%s", frag, got)
		}
	}
}

func TestSolvabilityShowGraphs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "deaf:3", "-graphs"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "[2]") {
		t.Errorf("-graphs did not list members:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "0.5") || !strings.Contains(sb.String(), "Theorem 2") {
		t.Errorf("deaf model bound missing:\n%s", sb.String())
	}
}

func TestSolvabilityVacuous(t *testing.T) {
	var sb strings.Builder
	// A single identity graph: not rooted -> vacuous bound.
	if err := run([]string{"-model", "edges:3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "n/a") {
		t.Errorf("vacuous bound not reported:\n%s", sb.String())
	}
}

func TestSolvabilityBadSpec(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "wat"}, &sb); err == nil {
		t.Error("bad model spec accepted")
	}
}
