package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"T1/n2", "F2/psi", "THM8/decision-n2", "X/census"} {
		if !strings.Contains(sb.String(), id) {
			t.Errorf("-list output missing %s", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "X/census", "-q"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "{H0,H1,H2}") {
		t.Errorf("census output missing key row:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "T1/n2") {
		t.Error("-run filter leaked other experiments")
	}
}

func TestRunCSVFormat(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "X/census", "-format", "csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "## X/census") || !strings.Contains(sb.String(), "model,") {
		t.Errorf("CSV output malformed:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "nope-nothing"}, &sb); err == nil {
		t.Error("unmatched -run should error")
	}
	if err := run([]string{"-format", "xml"}, &sb); err == nil {
		t.Error("unknown format should error")
	}
	if err := run([]string{"-bogusflag"}, &sb); err == nil {
		t.Error("unknown flag should error")
	}
}
