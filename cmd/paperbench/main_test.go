package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunBenchJSON runs the -bench mode on a scaled-down sweep and
// checks the JSON artifact is well-formed: both sweep paths measured,
// a finite speedup, and the run parameters echoed back.
func TestRunBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var sb strings.Builder
	args := []string{"-bench", "-benchn", "1", "-benchspecs", "8", "-benchrounds", "50",
		"-benchlargenrounds", "5", "-benchdist", "4", "-json", path}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "batch speedup") {
		t.Errorf("bench output missing speedup line:\n%s", sb.String())
	}
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Schema     string `json:"schema"`
		Specs      int    `json:"specs"`
		Rounds     int    `json:"rounds"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		Benchmarks []struct {
			Name       string  `json:"name"`
			MedianNs   int64   `json:"median_ns"`
			RunsPerSec float64 `json:"runs_per_sec"`
		} `json:"benchmarks"`
		SweepSpeedup           float64 `json:"sweep_speedup_batch_vs_single"`
		ScenarioSpeedup        float64 `json:"scenario_speedup_batch_vs_single"`
		ScenarioDiverseSpeedup float64 `json:"scenario_diverse_speedup_batch_vs_single"`
		Parallel               *struct {
			N      int `json:"n"`
			Batch  int `json:"batch"`
			Series []struct {
				Workload string `json:"workload"`
				Workers  int    `json:"workers"`
				MedianNs int64  `json:"median_ns"`
			} `json:"series"`
		} `json:"parallel"`
		Distributed *struct {
			Requests int `json:"requests"`
			Series   []struct {
				Workers        int     `json:"workers"`
				ReqPerSec      float64 `json:"req_per_sec"`
				LatencyP99MS   float64 `json:"latency_p99_ms"`
				ResubmitRate   float64 `json:"resubmit_store_hit_rate"`
				ResubmitShards uint64  `json:"resubmit_shards_dispatched"`
			} `json:"series"`
		} `json:"distributed"`
	}
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatalf("bad JSON artifact: %v\n%s", err, body)
	}
	if report.Schema != "repro-bench/v4" || report.Specs != 8 || report.Rounds != 50 {
		t.Errorf("artifact parameters wrong: %+v", report)
	}
	if report.GOMAXPROCS < 1 {
		t.Errorf("artifact missing gomaxprocs: %+v", report)
	}
	wantNames := []string{
		"sweep/single", "sweep/batch",
		"scenario-sweep/single", "scenario-sweep/batch",
		"scenario-diverse/single", "scenario-diverse/batch",
	}
	if len(report.Benchmarks) != len(wantNames) {
		t.Fatalf("artifact benchmarks wrong: %+v", report.Benchmarks)
	}
	for i, b := range report.Benchmarks {
		if b.Name != wantNames[i] {
			t.Errorf("benchmark %d is %q, want %q", i, b.Name, wantNames[i])
		}
		if b.MedianNs <= 0 || b.RunsPerSec <= 0 {
			t.Errorf("benchmark %s has non-positive measurements: %+v", b.Name, b)
		}
	}
	if report.SweepSpeedup <= 0 || report.ScenarioSpeedup <= 0 || report.ScenarioDiverseSpeedup <= 0 {
		t.Errorf("non-positive speedup %v / %v / %v",
			report.SweepSpeedup, report.ScenarioSpeedup, report.ScenarioDiverseSpeedup)
	}
	if report.Parallel == nil {
		t.Fatal("artifact missing the parallel large-n section")
	}
	if report.Parallel.N != 256 || report.Parallel.Batch != 1024 {
		t.Errorf("large-n section has n=%d B=%d, want 256/1024", report.Parallel.N, report.Parallel.Batch)
	}
	// One entry per workload per worker count, sequential always present.
	seen := map[string]bool{}
	for _, e := range report.Parallel.Series {
		if e.MedianNs <= 0 {
			t.Errorf("series entry %s w=%d has non-positive median", e.Workload, e.Workers)
		}
		if e.Workers == 1 {
			seen[e.Workload] = true
		}
	}
	for _, w := range []string{"largen-step/amortized", "largen-stepeach/churn"} {
		if !seen[w] {
			t.Errorf("series missing sequential entry for %s: %+v", w, report.Parallel.Series)
		}
	}
	if report.Distributed == nil {
		t.Fatal("artifact missing the distributed section")
	}
	if report.Distributed.Requests != 4 || len(report.Distributed.Series) != 2 {
		t.Fatalf("distributed section wrong: %+v", report.Distributed)
	}
	for _, e := range report.Distributed.Series {
		if e.Workers < 1 || e.Workers > 2 || e.ReqPerSec <= 0 || e.LatencyP99MS <= 0 {
			t.Errorf("distributed entry malformed: %+v", e)
		}
		// Resubmitting the identical stream must recompute nothing.
		if e.ResubmitShards != 0 {
			t.Errorf("%d-worker resubmission dispatched %d shards, want 0", e.Workers, e.ResubmitShards)
		}
		if e.ResubmitRate < 0.95 {
			t.Errorf("%d-worker resubmission store hit rate %.2f, want >= 0.95", e.Workers, e.ResubmitRate)
		}
	}
}

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"T1/n2", "F2/psi", "THM8/decision-n2", "X/census"} {
		if !strings.Contains(sb.String(), id) {
			t.Errorf("-list output missing %s", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "X/census", "-q"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "{H0,H1,H2}") {
		t.Errorf("census output missing key row:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "T1/n2") {
		t.Error("-run filter leaked other experiments")
	}
}

func TestRunCSVFormat(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "X/census", "-format", "csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "## X/census") || !strings.Contains(sb.String(), "model,") {
		t.Errorf("CSV output malformed:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "nope-nothing"}, &sb); err == nil {
		t.Error("unmatched -run should error")
	}
	if err := run([]string{"-format", "xml"}, &sb); err == nil {
		t.Error("unknown format should error")
	}
	if err := run([]string{"-bogusflag"}, &sb); err == nil {
		t.Error("unknown flag should error")
	}
}
