package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/consensus/distributed"
)

// distReport is the distributed throughput series in the bench
// artifact: one synthetic sweep request stream replayed through an
// in-process coordinator/worker cluster at 1 and 2 workers, then
// replayed a second time against the warm content-addressed store.
type distReport struct {
	Requests        int         `json:"requests"`
	SpecsPerRequest int         `json:"specs_per_request"`
	RepeatFraction  float64     `json:"repeat_fraction"`
	Rounds          int         `json:"rounds"`
	Series          []distEntry `json:"series"`
}

// distEntry is one worker-count measurement: the cold replay, then the
// identical stream again — resubmission must be pure store hits, so
// ResubmitShards (shards dispatched during the second replay) is the
// zero-recompute check in machine-readable form.
type distEntry struct {
	Workers      int     `json:"workers"`
	ReqPerSec    float64 `json:"req_per_sec"`
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`
	StoreHitRate float64 `json:"store_hit_rate"`
	SpecsServed  uint64  `json:"specs_served"`
	FromStore    uint64  `json:"specs_from_store"`
	Computed     uint64  `json:"specs_computed"`
	Shards       uint64  `json:"shards_dispatched"`

	ResubmitReqPerSec    float64 `json:"resubmit_req_per_sec"`
	ResubmitLatencyP99MS float64 `json:"resubmit_latency_p99_ms"`
	ResubmitStoreRate    float64 `json:"resubmit_store_hit_rate"`
	ResubmitShards       uint64  `json:"resubmit_shards_dispatched"`
}

// benchDistributed measures the coordinator/worker path. The stream is
// deterministic (fixed seed), so the 1- and 2-worker series replay
// identical requests and their ratios mean something.
func benchDistributed(out io.Writer, requests, specsPer, rounds int) (*distReport, error) {
	entries := distributed.SyntheticStream(distributed.SyntheticOptions{
		Requests:        requests,
		SpecsPerRequest: specsPer,
		RepeatFraction:  0.5,
		IntervalMS:      20,
		Seed:            1,
	})
	// Clamp rounds so the series stays a throughput measurement, not a
	// long simulation.
	for i := range entries {
		for j := range entries[i].Request.Specs {
			if entries[i].Request.Specs[j].Rounds > rounds {
				entries[i].Request.Specs[j].Rounds = rounds
			}
		}
	}
	rep := &distReport{
		Requests:        requests,
		SpecsPerRequest: specsPer,
		RepeatFraction:  0.5,
		Rounds:          rounds,
	}
	for _, workers := range []int{1, 2} {
		entry, err := benchCluster(workers, entries)
		if err != nil {
			return nil, err
		}
		rep.Series = append(rep.Series, *entry)
		fmt.Fprintf(out, "distributed/%dw            %8.1f req/s  p99 %6.1f ms  store hit rate %.2f (resubmit %.2f, +%d shards)\n",
			workers, entry.ReqPerSec, entry.LatencyP99MS, entry.StoreHitRate,
			entry.ResubmitStoreRate, entry.ResubmitShards)
	}
	return rep, nil
}

// benchCluster replays the stream cold, then warm, against a fresh
// cluster of the given size.
func benchCluster(workers int, entries []distributed.StreamEntry) (*distEntry, error) {
	lc, err := distributed.StartLocal(workers,
		[]distributed.CoordinatorOption{
			distributed.CoordinatorQueueCapacity(256),
			distributed.CoordinatorHealthInterval(0),
		},
		nil)
	if err != nil {
		return nil, err
	}
	defer lc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	cold, err := distributed.Replay(ctx, lc.BaseURL, entries, distributed.ReplayOptions{
		Speed: 50, Concurrency: 8,
	})
	if err != nil {
		return nil, err
	}
	st := lc.Coordinator.Status()
	entry := &distEntry{
		Workers:      workers,
		ReqPerSec:    cold.ReqPerSec,
		LatencyP50MS: cold.LatencyP50MS,
		LatencyP99MS: cold.LatencyP99MS,
		StoreHitRate: st.StoreHitRate,
		SpecsServed:  st.SpecsServed,
		FromStore:    st.SpecsFromStore,
		Computed:     st.SpecsComputed,
		Shards:       st.ShardsDispatched,
	}
	if cold.Errors > 0 {
		return nil, fmt.Errorf("distributed bench (%d workers): %d cold replay errors", workers, cold.Errors)
	}

	warm, err := distributed.Replay(ctx, lc.BaseURL, entries, distributed.ReplayOptions{
		Speed: 50, Concurrency: 8,
	})
	if err != nil {
		return nil, err
	}
	if warm.Errors > 0 {
		return nil, fmt.Errorf("distributed bench (%d workers): %d warm replay errors", workers, warm.Errors)
	}
	st2 := lc.Coordinator.Status()
	entry.ResubmitReqPerSec = warm.ReqPerSec
	entry.ResubmitLatencyP99MS = warm.LatencyP99MS
	entry.ResubmitShards = st2.ShardsDispatched - entry.Shards
	if served := st2.SpecsServed - entry.SpecsServed; served > 0 {
		entry.ResubmitStoreRate = float64(st2.SpecsFromStore-entry.FromStore) / float64(served)
	}
	return entry, nil
}
