package main

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

// This file measures the raw batch kernel on the large-n workload the
// parallel step is built for, bypassing the sweep machinery so the
// numbers isolate core.BatchRunner stepping. The dense plane encodes
// in-neighbor sets as word-sliced bitmasks (W = ⌈n/64⌉ words per row),
// so n is no longer capped at one machine word; the series runs at
// n = 256 (four words per row) to exercise the multi-word folds and the
// word-aligned receiver sharding, while B carries the batch scale.
const (
	largeN     = 256
	largeBatch = 1024
)

// parallelEntry is one (workload, worker-count) measurement of the
// large-n series.
type parallelEntry struct {
	Workload string `json:"workload"`
	Workers  int    `json:"workers"`
	MedianNs int64  `json:"median_ns"`
	// RunRoundsPerSec is B×rounds per second — row-steps of the kernel.
	RunRoundsPerSec float64 `json:"run_rounds_per_sec"`
}

// parallelReport is the BENCH_PR10 "parallel" section: the large-n
// kernel series per worker count (1, 2, 4, ... up to GOMAXPROCS, with 4
// always included when the machine has it) for the shared-graph
// amortized workload and the churn-clustered StepEach workload.
type parallelReport struct {
	N       int             `json:"n"`
	Batch   int             `json:"batch"`
	Rounds  int             `json:"rounds"`
	Series  []parallelEntry `json:"series"`
	// StepEachSpeedup4W is the churn StepEach workload's sequential
	// median over its 4-worker median — the multi-core CI gate. 0 when
	// the machine has fewer than 4 schedulable CPUs (the series then
	// carries no 4-worker point; single-CPU baselines stay honest).
	StepEachSpeedup4W float64 `json:"largen_stepeach_speedup_4w"`
	// StepSpeedup4W is the same ratio for the shared-graph workload.
	StepSpeedup4W float64 `json:"largen_step_speedup_4w"`
}

// largeGraphs builds the workload's graph pool: deaf-style variants of
// the complete graph — everyone hears everyone, except variant k's
// agent k hears only itself and agent (k+1) mod n. Few segments per
// graph (the fold-sharing regime the plan cache is built for), n
// distinct graphs for clustering to chew on.
func largeGraphs(n int) []graph.Graph {
	w := graph.WordsFor(n)
	full := make([]uint64, w)
	for i := 0; i < n; i++ {
		full[i/64] |= 1 << uint(i%64)
	}
	deaf := make([]uint64, w)
	gs := make([]graph.Graph, n)
	for k := 0; k < n; k++ {
		b := graph.NewBuilder(n)
		for j := 0; j < n; j++ {
			b.SetInRow(j, full)
		}
		for i := range deaf {
			deaf[i] = 0
		}
		deaf[k/64] |= 1 << uint(k%64)
		next := (k + 1) % n
		deaf[next/64] |= 1 << uint(next%64)
		b.SetInRow(k, deaf)
		gs[k] = b.Graph()
	}
	return gs
}

// largeInputs spreads B distinct input vectors over [0, 1].
func largeInputs(b, n int) [][]float64 {
	inputs := make([][]float64, b)
	for r := range inputs {
		in := make([]float64, n)
		for j := range in {
			in[j] = float64((r+j*7)%b) / float64(b)
		}
		inputs[r] = in
	}
	return inputs
}

// workerSeries returns the worker counts to measure: powers of two up
// to GOMAXPROCS, plus 4 whenever the machine can schedule it.
func workerSeries(maxProcs int) []int {
	series := []int{1}
	for w := 2; w <= maxProcs; w *= 2 {
		series = append(series, w)
	}
	if maxProcs >= 4 {
		has4 := false
		for _, w := range series {
			has4 = has4 || w == 4
		}
		if !has4 {
			series = append(series, 4)
			sort.Ints(series)
		}
	}
	return series
}

// benchLargeN measures the large-n kernel at every worker count of the
// series and returns the report section. Two workloads:
//
//   - step/amortized: every run steps under one shared per-round graph
//     (cycling through the pool) with the 3-plane amortized-midpoint
//     stepper — the shared-plan fast path, hulls included.
//   - stepeach/churn: per-run graphs, 16 runs per graph and the
//     assignment rotating every round — 64 clusters per round through
//     cached plans, the scenario-grid regime.
//
// Within one workload the samples at different worker counts interleave
// so machine-load drift lands on every series point alike.
func benchLargeN(out io.Writer, samples, rounds, n, maxProcs int) (*parallelReport, error) {
	if rounds < 1 {
		rounds = 1
	}
	b := largeBatch
	pool := largeGraphs(n)
	inputs := largeInputs(b, n)
	series := workerSeries(maxProcs)

	gs := make([]graph.Graph, b)
	los, his := make([]float64, b), make([]float64, b)

	stepOnce := func(workers int) time.Duration {
		br := core.NewBatchRunner(algorithms.AmortizedMidpoint{}, inputs)
		br.SetParallelism(workers)
		start := time.Now()
		for round := 0; round < rounds; round++ {
			br.StepWithHulls(pool[round%len(pool)], los, his)
		}
		return time.Since(start)
	}
	stepEachOnce := func(workers int) time.Duration {
		br := core.NewBatchRunner(algorithms.Midpoint{}, inputs)
		br.SetParallelism(workers)
		start := time.Now()
		for round := 0; round < rounds; round++ {
			for i := 0; i < b; i++ {
				gs[i] = pool[(i/16+round)%len(pool)]
			}
			br.StepEach(gs)
		}
		return time.Since(start)
	}

	measure := func(f func(int) time.Duration) map[int]int64 {
		durs := make(map[int][]time.Duration, len(series))
		f(series[0]) // warm the pool, the plan caches' allocator, and the CPU
		for s := 0; s < samples; s++ {
			for _, w := range series {
				durs[w] = append(durs[w], f(w))
			}
		}
		medians := make(map[int]int64, len(series))
		for w, d := range durs {
			sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
			medians[w] = d[len(d)/2].Nanoseconds()
		}
		return medians
	}

	stepMed := measure(stepOnce)
	eachMed := measure(stepEachOnce)

	rep := &parallelReport{N: n, Batch: b, Rounds: rounds}
	perSec := func(ns int64) float64 {
		if ns <= 0 {
			return 0
		}
		return float64(b) * float64(rounds) / (float64(ns) / 1e9)
	}
	for _, w := range series {
		rep.Series = append(rep.Series, parallelEntry{
			Workload: "largen-step/amortized", Workers: w,
			MedianNs: stepMed[w], RunRoundsPerSec: perSec(stepMed[w]),
		})
	}
	for _, w := range series {
		rep.Series = append(rep.Series, parallelEntry{
			Workload: "largen-stepeach/churn", Workers: w,
			MedianNs: eachMed[w], RunRoundsPerSec: perSec(eachMed[w]),
		})
	}
	if ns4, ok := eachMed[4]; ok && ns4 > 0 {
		rep.StepEachSpeedup4W = float64(eachMed[1]) / float64(ns4)
	}
	if ns4, ok := stepMed[4]; ok && ns4 > 0 {
		rep.StepSpeedup4W = float64(stepMed[1]) / float64(ns4)
	}
	for _, e := range rep.Series {
		fmt.Fprintf(out, "%-24s w=%-2d %12d ns  %10.0f run-rounds/s\n",
			e.Workload, e.Workers, e.MedianNs, e.RunRoundsPerSec)
	}
	if rep.StepEachSpeedup4W > 0 || rep.StepSpeedup4W > 0 {
		fmt.Fprintf(out, "large-n 4-worker speedup %.2fx (stepeach), %.2fx (step)\n",
			rep.StepEachSpeedup4W, rep.StepSpeedup4W)
	}
	return rep, nil
}
