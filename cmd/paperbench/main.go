// Command paperbench regenerates the paper's tables and figures: it runs
// the registered experiments (one per Table 1 cell, per figure, and per
// decision-time theorem) and prints the paper-claimed bound next to the
// measured value.
//
// It is a thin shell over consensus.Experiments/RunExperiment — the same
// registry the reprod query server serves at /api/v1/experiments.
//
// Usage:
//
//	paperbench                  run every experiment
//	paperbench -list            list experiment IDs
//	paperbench -run ID          run experiments whose ID contains the string
//	paperbench -format csv      emit CSV instead of aligned tables
//	paperbench -backend agents  force the interface-based reference backend
//	                            (default "auto" uses the dense kernel where
//	                            supported; tables are bit-identical)
//	paperbench -bench           run the machine-readable throughput bench:
//	                            the batch-plane sweep vs goroutine-per-run,
//	                            on the oblivious deaf-model workload and on
//	                            a 64-scenario grid (per-run schedules in
//	                            one batch)
//	paperbench -bench -json F   additionally write the results as JSON to F
//	                            (committed as BENCH_PR10.json and uploaded
//	                            as a CI artifact); the distributed series
//	                            spins an in-process coordinator/worker
//	                            cluster at 1 and 2 workers
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/consensus"
	"repro/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	fs.SetOutput(out)
	list := fs.Bool("list", false, "list experiment IDs and exit")
	runPat := fs.String("run", "", "only run experiments whose ID contains this substring")
	format := fs.String("format", "table", "output format: table | csv")
	quiet := fs.Bool("q", false, "suppress per-experiment timing lines")
	bench := fs.Bool("bench", false, "run the sweep-throughput benchmark instead of the experiments")
	jsonPath := fs.String("json", "", "with -bench: write results as JSON to this file")
	benchN := fs.Int("benchn", 5, "with -bench: samples per benchmark (median reported)")
	benchSpecs := fs.Int("benchspecs", 64, "with -bench: specs per sweep")
	benchRounds := fs.Int("benchrounds", 1000, "with -bench: rounds per run")
	largenRounds := fs.Int("benchlargenrounds", 200, "with -bench: rounds per large-n kernel sample (0 disables the large-n series)")
	largenN := fs.Int("benchlargenn", largeN, "with -bench: agents in the large-n kernel series (the multi-word regime needs > 64; 64 isolates the single-word fast path)")
	distRequests := fs.Int("benchdist", 24, "with -bench: requests in the distributed series (0 disables it)")
	backend := consensus.BackendFlag(fs)
	batchPar := consensus.BatchParallelismFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "table" && *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}
	if err := backend.Install(); err != nil {
		return err
	}
	if err := batchPar.Install(); err != nil {
		return err
	}

	if *bench {
		return runBench(out, *jsonPath, *benchN, *benchSpecs, *benchRounds, *largenRounds, *largenN, *distRequests, string(backend.Value()))
	}

	if *list {
		for _, e := range consensus.Experiments() {
			fmt.Fprintf(out, "%-24s %s (%s)\n", e.ID, e.Title, e.Paper)
		}
		return nil
	}

	matched := 0
	for _, e := range consensus.Experiments() {
		if *runPat != "" && !strings.Contains(e.ID, *runPat) {
			continue
		}
		matched++
		start := time.Now()
		table, err := consensus.RunExperiment(context.Background(), e.ID)
		if err != nil {
			return err
		}
		if *format == "csv" {
			fmt.Fprintf(out, "## %s\n%s\n", e.ID, table.CSV())
			continue
		}
		fmt.Fprint(out, table.Render())
		if !*quiet {
			fmt.Fprintf(out, "(%s)\n", time.Since(start).Round(time.Millisecond))
		}
		fmt.Fprintln(out)
	}
	if matched == 0 {
		return fmt.Errorf("no experiment matches %q; try -list", *runPat)
	}
	return nil
}

// benchReport is the machine-readable benchmark artifact (committed as
// BENCH_PR10.json and uploaded by CI): the batch-plane sweep against
// PR 3's goroutine-per-run sweep, on the shared-model workload and on
// two scenario grids with per-run schedules (long churn epochs, and
// every-round churn for maximal graph diversity), medians over the
// sampled repetitions, so the perf trajectory is tracked commit over
// commit.
type benchReport struct {
	Schema      string `json:"schema"`
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	// CPUs is the machine's logical CPU count, GOMAXPROCS the scheduler
	// parallelism the sweeps actually ran with — the two diverge under
	// container quotas, and throughput ratios are only comparable at
	// equal GOMAXPROCS.
	CPUs       int          `json:"cpus"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Backend    string       `json:"backend"`
	Specs      int          `json:"specs"`
	Rounds     int          `json:"rounds"`
	Samples    int          `json:"samples"`
	Benchmarks []benchEntry `json:"benchmarks"`
	// SweepSpeedup is sweep/single median over sweep/batch median — the
	// batch plane's throughput multiplier at equal worker count.
	SweepSpeedup float64 `json:"sweep_speedup_batch_vs_single"`
	// ScenarioSpeedup is the same ratio for the scenario grid, where
	// every run follows its own schedule (per-run graphs in one batch,
	// graph changing every 10 rounds).
	ScenarioSpeedup float64 `json:"scenario_speedup_batch_vs_single"`
	// ScenarioDiverseSpeedup is the ratio for the high-diversity
	// scenario grid: churn with single-round epochs, so every run plays
	// a new graph every round and the plan cache is pure churn — the
	// worst case for clustered stepping.
	ScenarioDiverseSpeedup float64 `json:"scenario_diverse_speedup_batch_vs_single"`
	// Parallel is the large-n kernel series: the raw batch kernel at
	// n=64 (the bitmask-adjacency ceiling), B=1024, stepped at every
	// worker count of the machine's series — the intra-step parallelism
	// trajectory alongside the batch-vs-single ratios above.
	Parallel *parallelReport `json:"parallel,omitempty"`
	// Distributed is the coordinator/worker series: a deterministic
	// synthetic request stream replayed through an in-process cluster at
	// 1 and 2 workers, cold then warm — request throughput, tail
	// latency, store hit rates, and the zero-recompute resubmission
	// check.
	Distributed *distReport `json:"distributed,omitempty"`
	// Obs is the observability-overhead pair: the churn StepEach kernel
	// workload with a live metrics registry bound vs detached. CI gates
	// obs.overhead at 1.02.
	Obs *obsReport `json:"obs,omitempty"`
}

// benchEntry is one measured configuration.
type benchEntry struct {
	Name       string  `json:"name"`
	MedianNs   int64   `json:"median_ns"`
	RunsPerSec float64 `json:"runs_per_sec"`
}

// runBench measures two acceptance sweeps through both sweep paths and
// reports medians: the shared-model workload (benchSpecs specs, n = 16,
// benchRounds rounds over deaf(K16) midpoint, inputs varied per spec)
// and the scenario grid (benchSpecs churn schedules, one per seed, so
// every batched run follows its own per-round graph sequence).
func runBench(out io.Writer, jsonPath string, samples, specCount, rounds, largenRounds, largenN, distRequests int, backend string) error {
	if samples < 1 || specCount < 1 || rounds < 0 || largenRounds < 0 || distRequests < 0 {
		return fmt.Errorf("bad bench parameters: n=%d specs=%d rounds=%d largen=%d dist=%d", samples, specCount, rounds, largenRounds, distRequests)
	}
	if largenN < 2 || largenN > graph.MaxNodes {
		return fmt.Errorf("bad bench parameters: largen agent count %d (want 2..%d)", largenN, graph.MaxNodes)
	}
	modelSpecs := make([]consensus.RunSpec, specCount)
	for i := range modelSpecs {
		inputs := consensus.SpreadInputs(16)
		inputs[2] = float64(i) / float64(specCount)
		modelSpecs[i] = consensus.RunSpec{
			Model: "deaf:16", Algorithm: "midpoint", Adversary: "cycle",
			Rounds: rounds, Inputs: inputs,
		}
	}
	scenarioSpecs := make([]consensus.RunSpec, specCount)
	epochs := max((rounds+9)/10, 1)
	for i := range scenarioSpecs {
		// Distinct seeds: every run plays its own churn schedule, so the
		// tile exercises the per-run-graphs batch path, not the shared-
		// graph fast path.
		scenarioSpecs[i] = consensus.RunSpec{
			Scenario:  fmt.Sprintf("churn:16,%d,10,%d,4", i+1, epochs),
			Algorithm: "midpoint", Rounds: rounds,
		}
	}
	diverseSpecs := make([]consensus.RunSpec, specCount)
	for i := range diverseSpecs {
		// Single-round epochs: every run changes graph every round, so
		// distinct graphs across the batch dwarf the plan-cache cap and
		// clustered stepping runs at maximal graph diversity.
		diverseSpecs[i] = consensus.RunSpec{
			Scenario:  fmt.Sprintf("churn:16,%d,1,%d,4", 1000+i, max(rounds, 1)),
			Algorithm: "midpoint", Rounds: rounds,
		}
	}
	sweepOnce := func(specs []consensus.RunSpec, opts ...consensus.SweepOption) (time.Duration, error) {
		all := append([]consensus.SweepOption{
			consensus.WithSweepCache(consensus.NewSweepCache()),
		}, opts...)
		start := time.Now()
		results, err := consensus.Sweep(context.Background(), specs, all...)
		if err != nil {
			return 0, err
		}
		for _, r := range results {
			if r.Err != "" {
				return 0, fmt.Errorf("spec %d: %s", r.Index, r.Err)
			}
		}
		return time.Since(start), nil
	}
	median := func(durations []time.Duration) int64 {
		sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
		return durations[len(durations)/2].Nanoseconds()
	}
	// Single and batch samples alternate within one workload, so slow
	// drift in machine load lands on both sides of each speedup ratio
	// instead of skewing whichever path happened to run later.
	measurePair := func(specs []consensus.RunSpec) (int64, int64, error) {
		single := make([]time.Duration, 0, samples)
		batch := make([]time.Duration, 0, samples)
		for s := 0; s < samples; s++ {
			d, err := sweepOnce(specs, consensus.SweepBatchSize(1))
			if err != nil {
				return 0, 0, err
			}
			single = append(single, d)
			if d, err = sweepOnce(specs); err != nil {
				return 0, 0, err
			}
			batch = append(batch, d)
		}
		return median(single), median(batch), nil
	}

	singleNs, batchNs, err := measurePair(modelSpecs)
	if err != nil {
		return err
	}
	scenarioSingleNs, scenarioBatchNs, err := measurePair(scenarioSpecs)
	if err != nil {
		return err
	}
	diverseSingleNs, diverseBatchNs, err := measurePair(diverseSpecs)
	if err != nil {
		return err
	}
	perSec := func(ns int64) float64 {
		if ns <= 0 {
			return 0
		}
		return float64(specCount) / (float64(ns) / 1e9)
	}
	report := benchReport{
		Schema:      "repro-bench/v4",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Backend:     backend,
		Specs:       specCount,
		Rounds:      rounds,
		Samples:     samples,
		Benchmarks: []benchEntry{
			{Name: "sweep/single", MedianNs: singleNs, RunsPerSec: perSec(singleNs)},
			{Name: "sweep/batch", MedianNs: batchNs, RunsPerSec: perSec(batchNs)},
			{Name: "scenario-sweep/single", MedianNs: scenarioSingleNs, RunsPerSec: perSec(scenarioSingleNs)},
			{Name: "scenario-sweep/batch", MedianNs: scenarioBatchNs, RunsPerSec: perSec(scenarioBatchNs)},
			{Name: "scenario-diverse/single", MedianNs: diverseSingleNs, RunsPerSec: perSec(diverseSingleNs)},
			{Name: "scenario-diverse/batch", MedianNs: diverseBatchNs, RunsPerSec: perSec(diverseBatchNs)},
		},
	}
	if batchNs > 0 {
		report.SweepSpeedup = float64(singleNs) / float64(batchNs)
	}
	if scenarioBatchNs > 0 {
		report.ScenarioSpeedup = float64(scenarioSingleNs) / float64(scenarioBatchNs)
	}
	if diverseBatchNs > 0 {
		report.ScenarioDiverseSpeedup = float64(diverseSingleNs) / float64(diverseBatchNs)
	}
	if largenRounds > 0 {
		par, err := benchLargeN(out, samples, largenRounds, largenN, runtime.GOMAXPROCS(0))
		if err != nil {
			return err
		}
		report.Parallel = par
	}
	if distRequests > 0 {
		dist, err := benchDistributed(out, distRequests, 6, 25)
		if err != nil {
			return err
		}
		report.Distributed = dist
	}
	if largenRounds > 0 {
		obsRep, err := benchObs(out, samples, largenRounds)
		if err != nil {
			return err
		}
		report.Obs = obsRep
	}
	fmt.Fprintf(out, "sweep/single             %12d ns/sweep  %8.0f runs/s\n", singleNs, perSec(singleNs))
	fmt.Fprintf(out, "sweep/batch              %12d ns/sweep  %8.0f runs/s\n", batchNs, perSec(batchNs))
	fmt.Fprintf(out, "scenario-sweep/single    %12d ns/sweep  %8.0f runs/s\n", scenarioSingleNs, perSec(scenarioSingleNs))
	fmt.Fprintf(out, "scenario-sweep/batch     %12d ns/sweep  %8.0f runs/s\n", scenarioBatchNs, perSec(scenarioBatchNs))
	fmt.Fprintf(out, "scenario-diverse/single  %12d ns/sweep  %8.0f runs/s\n", diverseSingleNs, perSec(diverseSingleNs))
	fmt.Fprintf(out, "scenario-diverse/batch   %12d ns/sweep  %8.0f runs/s\n", diverseBatchNs, perSec(diverseBatchNs))
	fmt.Fprintf(out, "batch speedup %.2fx (model sweep), %.2fx (scenario sweep), %.2fx (diverse scenario sweep)\n",
		report.SweepSpeedup, report.ScenarioSpeedup, report.ScenarioDiverseSpeedup)
	if jsonPath == "" {
		return nil
	}
	body, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if err := os.WriteFile(jsonPath, body, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", jsonPath)
	return nil
}
