// Command paperbench regenerates the paper's tables and figures: it runs
// the registered experiments (one per Table 1 cell, per figure, and per
// decision-time theorem) and prints the paper-claimed bound next to the
// measured value.
//
// It is a thin shell over consensus.Experiments/RunExperiment — the same
// registry the reprod query server serves at /api/v1/experiments.
//
// Usage:
//
//	paperbench                  run every experiment
//	paperbench -list            list experiment IDs
//	paperbench -run ID          run experiments whose ID contains the string
//	paperbench -format csv      emit CSV instead of aligned tables
//	paperbench -backend agents  force the interface-based reference backend
//	                            (default "auto" uses the dense kernel where
//	                            supported; tables are bit-identical)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/consensus"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	fs.SetOutput(out)
	list := fs.Bool("list", false, "list experiment IDs and exit")
	runPat := fs.String("run", "", "only run experiments whose ID contains this substring")
	format := fs.String("format", "table", "output format: table | csv")
	quiet := fs.Bool("q", false, "suppress per-experiment timing lines")
	backend := consensus.BackendFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "table" && *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}
	if err := backend.Install(); err != nil {
		return err
	}

	if *list {
		for _, e := range consensus.Experiments() {
			fmt.Fprintf(out, "%-24s %s (%s)\n", e.ID, e.Title, e.Paper)
		}
		return nil
	}

	matched := 0
	for _, e := range consensus.Experiments() {
		if *runPat != "" && !strings.Contains(e.ID, *runPat) {
			continue
		}
		matched++
		start := time.Now()
		table, err := consensus.RunExperiment(context.Background(), e.ID)
		if err != nil {
			return err
		}
		if *format == "csv" {
			fmt.Fprintf(out, "## %s\n%s\n", e.ID, table.CSV())
			continue
		}
		fmt.Fprint(out, table.Render())
		if !*quiet {
			fmt.Fprintf(out, "(%s)\n", time.Since(start).Round(time.Millisecond))
		}
		fmt.Fprintln(out)
	}
	if matched == 0 {
		return fmt.Errorf("no experiment matches %q; try -list", *runPat)
	}
	return nil
}
