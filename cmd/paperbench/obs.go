package main

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// This file measures what the observability plane costs where it could
// hurt: the batch kernel's stepping loop. The kernel samples once per
// round on the coordinating goroutine (two clock reads, one histogram
// observe, a handful of counter deltas), so the relative overhead is
// highest when rounds are cheap — the churn StepEach workload at a
// modest n is deliberately that worst-ish case, not a flattering one.
const (
	obsN     = 64
	obsBatch = 512
)

// obsReport is the BENCH "obs" section: the same kernel workload
// stepped with a live metrics registry bound and with the registry
// detached (the REPRO_OBS=off state), interleaved samples, medians.
type obsReport struct {
	N      int `json:"n"`
	Batch  int `json:"batch"`
	Rounds int `json:"rounds"`
	// InstrumentedNs / DetachedNs are the median workload wall times
	// with obs on and off.
	InstrumentedNs int64 `json:"instrumented_median_ns"`
	DetachedNs     int64 `json:"detached_median_ns"`
	// Overhead is instrumented/detached — the CI gate holds it at or
	// under 1.02.
	Overhead float64 `json:"overhead"`
}

// benchObs measures the instrumented-vs-detached kernel pair. The two
// variants alternate within each sample so machine-load drift lands on
// both sides of the ratio.
func benchObs(out io.Writer, samples, rounds int) (*obsReport, error) {
	if rounds < 1 {
		rounds = 1
	}
	defer core.SetObsRegistry(obs.Default())
	b := obsBatch
	pool := largeGraphs(obsN)[:16]
	inputs := largeInputs(b, obsN)
	workers := min(4, runtime.GOMAXPROCS(0))
	gs := make([]graph.Graph, b)

	stepOnce := func(reg *obs.Registry) time.Duration {
		core.SetObsRegistry(reg)
		br := core.NewBatchRunner(algorithms.Midpoint{}, inputs)
		br.SetParallelism(workers)
		start := time.Now()
		for round := 0; round < rounds; round++ {
			for i := 0; i < b; i++ {
				gs[i] = pool[(i/16+round)%len(pool)]
			}
			br.StepEach(gs)
		}
		return time.Since(start)
	}

	// A fresh live registry rather than obs.Default(), so the series
	// measures the instrumented path even under REPRO_OBS=off.
	live := obs.NewRegistry()
	stepOnce(live) // warm the pool, the plan caches' allocator, and the CPU
	var on, off []time.Duration
	for s := 0; s < samples; s++ {
		off = append(off, stepOnce(nil))
		on = append(on, stepOnce(live))
	}
	median := func(d []time.Duration) int64 {
		sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
		return d[len(d)/2].Nanoseconds()
	}
	rep := &obsReport{
		N: obsN, Batch: b, Rounds: rounds,
		InstrumentedNs: median(on),
		DetachedNs:     median(off),
	}
	if rep.DetachedNs > 0 {
		rep.Overhead = float64(rep.InstrumentedNs) / float64(rep.DetachedNs)
	}
	fmt.Fprintf(out, "obs/instrumented         %12d ns  obs/detached %12d ns  overhead %.4fx\n",
		rep.InstrumentedNs, rep.DetachedNs, rep.Overhead)
	return rep, nil
}
