// Command loadgen replays a recorded sweep request stream against a
// coordinator (or a single-process reprod server — the request shape is
// shared) at a time-compression factor, measuring sustained request
// throughput and latency percentiles.
//
// Usage:
//
//	loadgen -target http://127.0.0.1:9090 -stream sweeps.jsonl -speed 50
//	loadgen -target URL -synthetic 200 -repeat 0.6 -record sweeps.jsonl
//
// Streams are JSONL, one {"at_ms": N, "request": {"specs": [...]}} per
// line. -synthetic N generates a deterministic N-request mixed
// model/scenario stream instead of reading one; -record writes the
// generated stream out for later replays. 429 rejections honor
// Retry-After and retry; the report counts them separately.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/consensus/distributed"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(out)
	target := fs.String("target", "http://127.0.0.1:9090", "coordinator (or server) base URL")
	streamPath := fs.String("stream", "", "JSONL request stream to replay")
	synthetic := fs.Int("synthetic", 0, "generate an N-request synthetic stream instead of -stream")
	specsPer := fs.Int("specs", 8, "synthetic: specs per request")
	repeat := fs.Float64("repeat", 0.5, "synthetic: fraction of repeated specs (the store-hit knob)")
	intervalMS := fs.Int64("interval", 100, "synthetic: mean recorded gap between requests, ms")
	seed := fs.Int64("seed", 1, "synthetic: stream seed")
	record := fs.String("record", "", "write the (synthetic) stream to this path before replaying")
	speed := fs.Float64("speed", 10, "time-compression factor (10 = 10x faster than recorded)")
	concurrency := fs.Int("concurrency", 8, "max in-flight requests")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall replay budget")
	jsonOut := fs.Bool("json", false, "emit the report as JSON (progress lines move to stderr)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// With -json, stdout carries only the report so it pipes into jq.
	progress := out
	if *jsonOut {
		progress = os.Stderr
	}

	var entries []distributed.StreamEntry
	switch {
	case *synthetic > 0:
		entries = distributed.SyntheticStream(distributed.SyntheticOptions{
			Requests:        *synthetic,
			SpecsPerRequest: *specsPer,
			RepeatFraction:  *repeat,
			IntervalMS:      *intervalMS,
			Seed:            *seed,
		})
	case *streamPath != "":
		f, err := os.Open(*streamPath)
		if err != nil {
			return err
		}
		var rerr error
		entries, rerr = distributed.ReadStream(f)
		f.Close()
		if rerr != nil {
			return rerr
		}
	default:
		return fmt.Errorf("need -stream FILE or -synthetic N")
	}
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			return err
		}
		werr := distributed.WriteStream(f, entries)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(progress, "loadgen: recorded %d requests to %s\n", len(entries), *record)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	fmt.Fprintf(progress, "loadgen: replaying %d requests against %s at %gx\n", len(entries), *target, *speed)
	rep, err := distributed.Replay(ctx, *target, entries, distributed.ReplayOptions{
		Speed:       *speed,
		Concurrency: *concurrency,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(out, "loadgen: %d ok, %d errors, %d rejected (429) in %dms\n",
		rep.Requests-rep.Errors, rep.Errors, rep.Rejected, rep.ElapsedMS)
	fmt.Fprintf(out, "loadgen: %.1f req/s over %d specs\n", rep.ReqPerSec, rep.Specs)
	fmt.Fprintf(out, "loadgen: latency p50 %.1fms p95 %.1fms p99 %.1fms max %.1fms\n",
		rep.LatencyP50MS, rep.LatencyP95MS, rep.LatencyP99MS, rep.LatencyMaxMS)
	return nil
}
