package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListAndErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"partitionheal", "churn", "eventuallyrooted", "frommodel", "trace", "repeat", "concat", "interleave"} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("list missing %q", name)
		}
	}
	if err := run(nil, &sb); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"bogus"}, &sb); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"gen", "-scenario", "eventuallyrooted:4,1"}, &sb); err == nil {
		t.Error("gen without -o accepted")
	}
	if err := run([]string{"inspect"}, &sb); err == nil {
		t.Error("inspect without a source accepted")
	}
}

func TestGenInspectCertify(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "part.trace")
	var sb strings.Builder
	if err := run([]string{"gen", "-scenario", "partitionheal:6,2,4", "-o", trace}, &sb); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(trace); err != nil {
		t.Fatal(err)
	}

	sb.Reset()
	if err := run([]string{"inspect", "-in", trace, "-graphs"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"agents:          6", "prefix rounds:   4", "loop rounds:     1", "fingerprint:", "round   5 (loop)"} {
		if !strings.Contains(sb.String(), frag) {
			t.Errorf("inspect missing %q:\n%s", frag, sb.String())
		}
	}

	sb.Reset()
	if err := run([]string{"certify", "-in", trace}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"rooted every round:      no (first at round 1)", "rooted window:           5"} {
		if !strings.Contains(sb.String(), frag) {
			t.Errorf("certify missing %q:\n%s", frag, sb.String())
		}
	}
}

// TestRecordReplayBackendsAgree records a greedy-adversary run and
// replays its trace under both backends with per-round fingerprints;
// the replay output (diameters and fingerprint digests alike) must be
// identical — the CLI form of the exact-replay differential.
func TestRecordReplayBackendsAgree(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "greedy.trace")
	var sb strings.Builder
	if err := run([]string{"record", "-model", "psi:4", "-adversary", "greedy",
		"-rounds", "6", "-o", trace}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "recorded 6 rounds") {
		t.Fatalf("record output:\n%s", sb.String())
	}

	replay := func(backend string) string {
		var out strings.Builder
		if err := run([]string{"replay", "-in", trace, "-algorithm", "midpoint",
			"-rounds", "6", "-fingerprints", "-backend", backend}, &out); err != nil {
			t.Fatal(err)
		}
		// Drop the header (it names the backend) and compare the rest.
		_, rest, ok := strings.Cut(out.String(), "\n")
		if !ok {
			t.Fatalf("replay output too short:\n%s", out.String())
		}
		return rest
	}
	agents := replay("agents")
	dense := replay("dense")
	if agents != dense {
		t.Fatalf("backends disagree on replay:\nagents:\n%s\ndense:\n%s", agents, dense)
	}
	if !strings.Contains(agents, "fp ") || strings.Contains(agents, "fp n/a") {
		t.Fatalf("fingerprints missing:\n%s", agents)
	}
}

func TestReplayScenarioSpecDirectly(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"replay", "-scenario", "churn:8,1,3,2,3", "-algorithm", "mean"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "replaying mean") || !strings.Contains(sb.String(), "round   6") {
		t.Fatalf("replay output:\n%s", sb.String())
	}
}
