// Command scenario records, generates, inspects, certifies, and replays
// dynamic-network schedules — the command-line face of the scenario
// plane (consensus/scenario and the reprod /api/v1/scenario endpoint).
//
// A schedule comes from one of two places: a generator spec resolved
// against the consensus Scenarios registry (-scenario), or a binary
// trace file written earlier (-in). Traces are deterministic and
// fingerprinted, so "record on one machine, certify and replay on
// another" is exact.
//
// Usage:
//
//	scenario list
//	scenario record  -model psi:4 -adversary greedy -rounds 12 -o run.trace
//	scenario gen     -scenario partitionheal:8,2,5 -o part.trace
//	scenario inspect -in run.trace [-graphs]
//	scenario certify -in run.trace [-model psi:4] [-rounds 64]
//	scenario replay  -in run.trace -algorithm midpoint -rounds 12 [-fingerprints]
//
// replay prints the per-round diameter series and, with -fingerprints,
// the per-round configuration fingerprint digests — byte-identical
// across backends (-backend agents | dense), which CI smokes.
package main

import (
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/consensus"
	"repro/consensus/scenario"
	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("want a subcommand: list | record | gen | inspect | certify | replay")
	}
	switch args[0] {
	case "list":
		return runList(out)
	case "record":
		return runRecord(args[1:], out)
	case "gen":
		return runGen(args[1:], out)
	case "inspect":
		return runInspect(args[1:], out)
	case "certify":
		return runCertify(args[1:], out)
	case "replay":
		return runReplay(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want list | record | gen | inspect | certify | replay)", args[0])
	}
}

func runList(out io.Writer) error {
	for _, f := range consensus.Scenarios.Describe() {
		fmt.Fprintf(out, "%-18s %-40s %s\n", f.Name, f.Usage, f.Summary)
	}
	return nil
}

// loadFlags registers the shared schedule-source flags (-in | -scenario)
// on fs and returns the loader to call after parsing.
func loadFlags(fs *flag.FlagSet) func() (*scenario.Schedule, error) {
	inPath := fs.String("in", "", "read the schedule from this binary trace file")
	spec := fs.String("scenario", "", "resolve the schedule from this generator spec (see 'scenario list')")
	return func() (*scenario.Schedule, error) {
		switch {
		case *inPath != "" && *spec != "":
			return nil, fmt.Errorf("-in and -scenario are mutually exclusive")
		case *inPath != "":
			data, err := os.ReadFile(*inPath)
			if err != nil {
				return nil, err
			}
			return scenario.Decode(data)
		case *spec != "":
			return consensus.Scenarios.New(*spec, consensus.ScenarioEnv{
				Models: consensus.Models, Scenarios: consensus.Scenarios,
			})
		default:
			return nil, fmt.Errorf("want -in FILE or -scenario SPEC")
		}
	}
}

func writeTrace(out io.Writer, sch *scenario.Schedule, path string) error {
	if err := os.WriteFile(path, sch.Encode(), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: %s\n", path, sch)
	return nil
}

func runRecord(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scenario record", flag.ContinueOnError)
	fs.SetOutput(out)
	modelSpec := fs.String("model", "", "model spec the adversary draws from")
	algSpec := fs.String("algorithm", "midpoint", "algorithm under attack")
	advSpec := fs.String("adversary", "greedy", "adversary/scheduler spec to record")
	rounds := fs.Int("rounds", consensus.DefaultRounds, "rounds to record")
	seed := fs.Int64("seed", consensus.DefaultSeed, "RNG seed for seeded adversaries")
	depth := fs.Int("depth", consensus.DefaultDepth, "valency depth for greedy adversaries")
	inputsFlag := fs.String("inputs", "", "comma-separated initial values (default: spread)")
	outPath := fs.String("o", "", "trace output file (required)")
	backend := consensus.BackendFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		return fmt.Errorf("record needs -o FILE")
	}
	if err := backend.Install(); err != nil {
		return err
	}
	opts := []consensus.Option{
		consensus.WithAlgorithm(*algSpec),
		consensus.WithAdversary(*advSpec),
		consensus.WithRounds(*rounds),
		consensus.WithSeed(*seed),
		consensus.WithDepth(*depth),
	}
	if *modelSpec != "" {
		opts = append(opts, consensus.WithModel(*modelSpec))
	}
	if *inputsFlag != "" {
		inputs, err := consensus.ParseFloats(*inputsFlag)
		if err != nil {
			return err
		}
		opts = append(opts, consensus.WithInputs(inputs...))
	}
	session, err := consensus.New(opts...)
	if err != nil {
		return err
	}
	res, sch, err := session.RunRecorded(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "recorded %d rounds of %s vs %s: diameter %.6g -> %.6g\n",
		res.Rounds(), session.Algorithm(), *advSpec, res.DiameterAt(0), res.DiameterAt(res.Rounds()))
	return writeTrace(out, sch, *outPath)
}

func runGen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scenario gen", flag.ContinueOnError)
	fs.SetOutput(out)
	load := loadFlags(fs)
	outPath := fs.String("o", "", "trace output file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		return fmt.Errorf("gen needs -o FILE")
	}
	sch, err := load()
	if err != nil {
		return err
	}
	return writeTrace(out, sch, *outPath)
}

func runInspect(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scenario inspect", flag.ContinueOnError)
	fs.SetOutput(out)
	load := loadFlags(fs)
	graphs := fs.Bool("graphs", false, "print every round's graph")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sch, err := load()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "agents:          %d\n", sch.N())
	fmt.Fprintf(out, "prefix rounds:   %d\n", sch.PrefixLen())
	if sch.Finite() {
		fmt.Fprintf(out, "tail:            finite (last graph repeats)\n")
	} else {
		fmt.Fprintf(out, "loop rounds:     %d\n", sch.LoopLen())
	}
	fmt.Fprintf(out, "distinct graphs: %d\n", sch.DistinctGraphs())
	fmt.Fprintf(out, "trace bytes:     %d\n", len(sch.Encode()))
	fmt.Fprintf(out, "fingerprint:     %s\n", sch.Fingerprint())
	if *graphs {
		for t := 1; t <= sch.Horizon(); t++ {
			kind := "prefix"
			if t > sch.PrefixLen() {
				kind = "loop"
			}
			fmt.Fprintf(out, "  round %3d (%s): %v\n", t, kind, sch.At(t))
		}
	}
	return nil
}

func runCertify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scenario certify", flag.ContinueOnError)
	fs.SetOutput(out)
	load := loadFlags(fs)
	modelSpec := fs.String("model", "", "also certify membership in this model")
	rounds := fs.Int("rounds", 0, "certification horizon (default: prefix + one loop)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sch, err := load()
	if err != nil {
		return err
	}
	req := consensus.ScenarioRequest{Trace: sch.Encode(), Model: *modelSpec, Rounds: *rounds}
	rep, err := consensus.RunScenario(context.Background(), req)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s\n", sch)
	fmt.Fprint(out, rep.Certificate.Summary())
	return nil
}

func runReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scenario replay", flag.ContinueOnError)
	fs.SetOutput(out)
	load := loadFlags(fs)
	algSpec := fs.String("algorithm", "midpoint", "algorithm to run over the schedule")
	rounds := fs.Int("rounds", 0, "rounds to replay (default: prefix + one loop)")
	inputsFlag := fs.String("inputs", "", "comma-separated initial values (default: spread)")
	fingerprints := fs.Bool("fingerprints", false, "print each round's configuration fingerprint digest")
	backend := consensus.BackendFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := backend.Install(); err != nil {
		return err
	}
	sch, err := load()
	if err != nil {
		return err
	}
	R := *rounds
	if R <= 0 {
		R = sch.Horizon()
	}
	opts := []consensus.Option{
		consensus.WithScenario(sch),
		consensus.WithAlgorithm(*algSpec),
		consensus.WithRounds(R),
	}
	if *inputsFlag != "" {
		inputs, err := consensus.ParseFloats(*inputsFlag)
		if err != nil {
			return err
		}
		opts = append(opts, consensus.WithInputs(inputs...))
	}
	session, err := consensus.New(opts...)
	if err != nil {
		return err
	}
	// The replay state stepped again on the *selected* backend and
	// fingerprinted per round: dense state under -backend dense/auto,
	// an agent configuration under -backend agents. The engines'
	// bit-identity contract promises identical fingerprints either way,
	// so diffing replay output between the two backends genuinely tests
	// exact replay — digesting one fixed reference path would compare
	// it with itself.
	var fpAt func(round int) string
	if *fingerprints {
		var err error
		if fpAt, err = newFingerprintStepper(*algSpec, session.N(), session.Inputs(), sch); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "replaying %s over %s (%d rounds, backend %s)\n",
		session.Algorithm(), sch, R, backend.Value())
	var diams []float64
	for snap, err := range session.Rounds(context.Background()) {
		if err != nil {
			return err
		}
		diams = append(diams, snap.Diameter)
		line := fmt.Sprintf("round %3d  diameter %.9g", snap.Round, snap.Diameter)
		if fpAt != nil {
			line += "  fp " + fpAt(snap.Round)
		}
		fmt.Fprintln(out, line)
	}
	fmt.Fprintf(out, "geometric rate %.6g, worst round ratio %.6g\n",
		consensus.GeometricRate(diams), consensus.WorstRoundRatio(diams))
	return nil
}

// newFingerprintStepper returns a function yielding the short
// configuration-fingerprint digest after each schedule round, computed
// on the process's current backend (dense state when the backend and
// algorithm allow, agent configuration otherwise). Rounds must be
// requested in ascending order.
func newFingerprintStepper(algSpec string, n int, inputs []float64, sch *scenario.Schedule) (func(round int) string, error) {
	alg, err := consensus.Algorithms.New(algSpec, n)
	if err != nil {
		return nil, err
	}
	digest := func(fp []byte, ok bool) string {
		if !ok {
			return "n/a"
		}
		sum := sha256.Sum256(fp)
		return fmt.Sprintf("%x", sum[:8])
	}
	if core.CurrentBackend().DenseEnabled() {
		if d, ok := core.AsDense(alg); ok {
			r := core.NewDenseRunner(d, inputs)
			return func(round int) string {
				for r.Round() < round {
					r.Step(sch.At(r.Round() + 1))
				}
				fp, ok := core.AppendDenseFingerprint(d, r.State(), nil)
				return digest(fp, ok)
			}, nil
		}
	}
	c := core.NewConfig(alg, inputs)
	return func(round int) string {
		for c.Round() < round {
			c.StepInPlace(sch.At(c.Round() + 1))
		}
		fp, ok := c.AppendFingerprint(nil)
		return digest(fp, ok)
	}, nil
}
