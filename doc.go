// Package repro is a Go reproduction of Függer, Nowak, Schwarz, "Tight
// Bounds for Asymptotic and Approximate Consensus" (PODC 2018,
// arXiv:1705.02898): the averaging algorithms that achieve the paper's
// upper bounds, the valency machinery and adversaries behind its lower
// bounds, the Coulouma-Godard-Peters solvability theory it builds on, and
// the asynchronous crash-fault system of its classical corollaries.
//
// The root package carries only documentation and the repository-level
// benchmarks. The PUBLIC API is package consensus — the facade every
// user-facing tool drives the engines through: a functional-options
// session API (New/Run/Rounds), shared registries for algorithms,
// models, adversaries, and scenarios, batch sweeps with
// fingerprint-keyed caching, query helpers (Solvability, ValencyBounds,
// DecisionSweep, AsyncRun, VectorRun, RunScenario, Experiments), and an
// embeddable HTTP query server.
//
// The engines live under internal/ (see README.md for the architecture
// and DESIGN.md for the paper-to-package map):
//
//	consensus            the public facade: sessions, registries, sweeps,
//	                     queries, and the JSON query server
//	consensus/scenario   public dynamic-network schedules: generators,
//	                     recording, binary traces, property certification
//	internal/graph       communication graphs and the paper's graph families
//	internal/model       network models, alpha/beta machinery, solvability
//	internal/core        the round-based dynamic-network execution model
//	internal/algorithms  two-thirds, midpoint, amortized midpoint, quantized
//	                     midpoint, mean, flow-sum, flood-root
//	internal/valency     certified inner/outer bounds on valencies Y*(C)
//	internal/adversary   the lower-bound pattern constructions
//	internal/approx      approximate consensus: deciders and time bounds
//	internal/async       asynchronous message passing with unclean crashes
//	internal/pattern     Section 6.1 properties over communication patterns
//	internal/vector      coordinate-wise lift to d-dimensional values
//	internal/scenario    the binary trace codec for schedules
//	internal/exp         the experiment registry regenerating every table
//	                     and figure of the paper
//
// Entry points (all thin shells over package consensus): cmd/reprod
// serves the JSON query API, cmd/paperbench regenerates the paper's
// results, cmd/solvability analyzes arbitrary models, cmd/contraction
// races algorithms against adversaries, cmd/scenario records,
// certifies, and replays dynamic-network schedules, cmd/asyncsim drives
// the crash-fault simulator, and cmd/decision sweeps
// approximate-consensus tolerances.
package repro
