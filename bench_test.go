// Package repro's repository-level benchmarks. One benchmark per
// registered paper experiment (every Table 1 cell, figure, and
// decision-time theorem — see internal/exp), plus micro-benchmarks for
// the substrate operations the experiments lean on.
//
// Run with: go test -bench=. -benchmem
package repro

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/algorithms"
	"repro/internal/approx"
	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/valency"
	"repro/internal/vector"
)

// BenchmarkExperiment regenerates every paper table and figure; the
// sub-benchmark names are the experiment IDs from internal/exp.
func BenchmarkExperiment(b *testing.B) {
	for _, e := range exp.All() {
		e := e
		b.Run(strings.ReplaceAll(e.ID, "/", "_"), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tbl := e.Run()
				if len(tbl.Rows) == 0 {
					b.Fatal("experiment produced no rows")
				}
			}
		})
	}
}

func BenchmarkGraphProduct(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{8, 32, 64} {
		g := graph.Random(rng, n, 0.3)
		h := graph.Random(rng, n, 0.3)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = graph.Product(g, h)
			}
		})
	}
}

func BenchmarkGraphRoots(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{8, 32, 64} {
		g := graph.Random(rng, n, 0.1)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = g.Roots()
			}
		})
	}
}

func BenchmarkGraphNonSplit(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{8, 32, 64} {
		g := graph.RandomNonSplit(rng, n, 0.3)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = g.IsNonSplit()
			}
		})
	}
}

func BenchmarkConfigStep(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{4, 16, 64} {
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = rng.Float64()
		}
		g := graph.RandomNonSplit(rng, n, 0.3)
		for _, alg := range []core.Algorithm{algorithms.Midpoint{}, algorithms.AmortizedMidpoint{}} {
			c := core.NewConfig(alg, inputs)
			b.Run(alg.Name()+"/"+sizeName(n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					_ = c.Step(g)
				}
			})
		}
	}
}

// BenchmarkConfigStepInPlace measures the zero-clone fast path used by
// Run; compare with BenchmarkConfigStep to see the cloning cost.
func BenchmarkConfigStepInPlace(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{4, 16, 64} {
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = rng.Float64()
		}
		g := graph.RandomNonSplit(rng, n, 0.3)
		c := core.NewConfig(algorithms.Midpoint{}, inputs)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.StepInPlace(g)
			}
		})
	}
}

// BenchmarkDenseStep measures one round of the dense struct-of-arrays
// kernel; compare with BenchmarkConfigStep (forking Agent path) and
// BenchmarkConfigStepInPlace (in-place Agent path) for the same sizes.
func BenchmarkDenseStep(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{4, 16, 64} {
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = rng.Float64()
		}
		g := graph.RandomNonSplit(rng, n, 0.3)
		for _, alg := range []core.Algorithm{algorithms.Midpoint{}, algorithms.AmortizedMidpoint{}} {
			d, ok := core.AsDense(alg)
			if !ok {
				b.Fatalf("%s lacks dense support", alg.Name())
			}
			r := core.NewDenseRunner(d, inputs)
			b.Run(alg.Name()+"/"+sizeName(n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					r.Step(g)
				}
			})
		}
	}
}

// BenchmarkBatchStep measures the batched execution plane against B
// independent dense runners on one shared deaf(K16) graph: the batch
// steps every run per call, so ns/op divided by B is the per-run round
// cost — the receiver segmentation and mask scan are paid once per
// batch instead of once per run.
func BenchmarkBatchStep(b *testing.B) {
	const n = 16
	rng := rand.New(rand.NewSource(11))
	g := graph.Deaf(graph.Complete(n), 3)
	d, _ := core.AsDense(algorithms.Midpoint{})
	for _, B := range []int{8, 64} {
		inputs := make([][]float64, B)
		for r := range inputs {
			inputs[r] = make([]float64, n)
			for i := range inputs[r] {
				inputs[r][i] = rng.Float64()
			}
		}
		b.Run("singles/B"+strconv.Itoa(B), func(b *testing.B) {
			runners := make([]*core.DenseRunner, B)
			for r := range runners {
				runners[r] = core.NewDenseRunner(d, inputs[r])
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range runners {
					r.Step(g)
				}
			}
		})
		b.Run("batch/B"+strconv.Itoa(B), func(b *testing.B) {
			br := core.NewBatchRunner(d, inputs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				br.Step(g)
			}
		})
	}
}

// BenchmarkVectorLift measures the d-dimensional lift: the PR 2 path
// (one DenseRunner per coordinate) against the batch plane the vector
// runner now rides (all coordinates as one batch).
func BenchmarkVectorLift(b *testing.B) {
	const n, dim, rounds = 16, 8, 1000
	rng := rand.New(rand.NewSource(21))
	points := make([]vector.Point, n)
	for i := range points {
		points[i] = make(vector.Point, dim)
		for c := range points[i] {
			points[i][c] = rng.Float64()
		}
	}
	pool := model.DeafModel(graph.Complete(n)).Graphs()
	d, _ := core.AsDense(algorithms.Midpoint{})
	b.Run("per-coord", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runners := make([]*core.DenseRunner, dim)
			coords := make([]float64, n)
			for c := 0; c < dim; c++ {
				for j, p := range points {
					coords[j] = p[c]
				}
				runners[c] = core.NewDenseRunner(d, coords)
			}
			for t := 0; t < rounds; t++ {
				g := pool[t%len(pool)]
				for _, r := range runners {
					r.Step(g)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runner, err := vector.NewRunnerBackend(algorithms.Midpoint{}, points, core.BackendDense)
			if err != nil {
				b.Fatal(err)
			}
			src := core.Cycle{Graphs: pool}
			runner.Run(src, rounds)
			if runner.Round() != rounds {
				b.Fatal("short lift")
			}
		}
	})
}

// BenchmarkContractionDense is the acceptance race of the dense backend:
// an n=16, 1000-round contraction race (the cmd/contraction measurement
// loop) under the forking Agent path versus the dense kernel. The graphs
// cycle through the deaf(K_16) model, the Table 1 non-split worst case.
func BenchmarkContractionDense(b *testing.B) {
	const n, rounds = 16, 1000
	rng := rand.New(rand.NewSource(8))
	inputs := make([]float64, n)
	for i := range inputs {
		inputs[i] = rng.Float64()
	}
	pool := model.DeafModel(graph.Complete(n)).Graphs()
	for _, alg := range []core.Algorithm{algorithms.Midpoint{}, algorithms.AmortizedMidpoint{}} {
		b.Run(alg.Name()+"/agents", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := core.NewConfig(alg, inputs)
				for round := 1; round <= rounds; round++ {
					c = c.Step(pool[(round-1)%len(pool)])
				}
				if c.Round() != rounds {
					b.Fatal("short race")
				}
			}
		})
		d, ok := core.AsDense(alg)
		if !ok {
			b.Fatalf("%s lacks dense support", alg.Name())
		}
		b.Run(alg.Name()+"/dense", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := core.NewDenseRunner(d, inputs)
				for round := 1; round <= rounds; round++ {
					r.Step(pool[(round-1)%len(pool)])
				}
				if r.Round() != rounds {
					b.Fatal("short race")
				}
			}
		})
	}
}

// BenchmarkValencyInner measures the estimator's standard usage: one
// persistent engine (as built by NewEstimator) queried repeatedly, so the
// transposition table is warm after the first iteration — exactly the
// adversaries' cross-round access pattern.
func BenchmarkValencyInner(b *testing.B) {
	m := model.TwoAgent()
	c := core.NewConfig(algorithms.TwoThirds{}, []float64{0, 1})
	for _, depth := range []int{2, 4, 6, 8} {
		est := valency.NewEstimator(m, depth, true)
		b.Run("depth-"+strconv.Itoa(depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = est.Inner(c)
			}
		})
	}
}

// BenchmarkValencyInnerCold measures a full exploration from an empty
// transposition table: every iteration pays the entire tree walk. This is
// the honest single-shot speedup over the naive recursive reference
// (settle-chain pre-fill, within-walk memoization, arena stepping,
// parallel fan-out — but no cross-call reuse).
func BenchmarkValencyInnerCold(b *testing.B) {
	m := model.TwoAgent()
	c := core.NewConfig(algorithms.TwoThirds{}, []float64{0, 1})
	for _, depth := range []int{2, 4, 6, 8} {
		b.Run("depth-"+strconv.Itoa(depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng := valency.NewEngine(m, valency.DefaultParams(depth, true))
				_ = eng.Inner(c)
			}
		})
	}
}

// BenchmarkValencyOuter measures the outer-bound walk, warm-engine usage.
func BenchmarkValencyOuter(b *testing.B) {
	m := model.TwoAgent()
	c := core.NewConfig(algorithms.TwoThirds{}, []float64{0, 1})
	for _, depth := range []int{4, 8} {
		est := valency.NewEstimator(m, depth, true)
		b.Run("depth-"+strconv.Itoa(depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = est.Outer(c)
			}
		})
	}
}

func BenchmarkGreedyAdversaryRound(b *testing.B) {
	m := model.DeafModel(graph.Complete(3))
	est := valency.NewEstimator(m, 3, true)
	adv := &adversary.Greedy{Est: est}
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1, 0.5})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = adv.Next(1, c)
	}
}

// BenchmarkGreedyAdversaryRun plays a whole adversarial execution per
// iteration on a cold engine and reports the transposition-table hit rate
// of the cross-round reuse: the settle loops of the chosen successor's
// subtree, resolved while ranking candidates, hit the depth-independent
// limit table in the following round.
func BenchmarkGreedyAdversaryRun(b *testing.B) {
	m := model.DeafModel(graph.Complete(3))
	inputs := []float64{0, 1, 0.5}
	const rounds = 8
	b.ReportAllocs()
	var stats valency.CacheStats
	for i := 0; i < b.N; i++ {
		est := valency.NewEstimator(m, 3, true)
		adv := &adversary.Greedy{Est: est}
		tr := core.Run(algorithms.Midpoint{}, inputs, adv, rounds)
		if tr.Rounds() != rounds {
			b.Fatal("short run")
		}
		stats = est.Engine().Stats()
	}
	b.ReportMetric(stats.HitRate(), "hit-rate")
}

func BenchmarkAlphaDiameter(b *testing.B) {
	na, err := model.FullAsyncRound(4, 1)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		m    *model.Model
	}{
		{"twoagent-3", model.TwoAgent()},
		{"deafK5-5", model.DeafModel(graph.Complete(5))},
		{"NA41-256", na},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = tc.m.AlphaDiameter()
			}
		})
	}
}

func BenchmarkBetaClasses(b *testing.B) {
	na, err := model.FullAsyncRound(4, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("NA41-256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = na.BetaClasses()
		}
	})
}

func BenchmarkAsyncRoundBased(b *testing.B) {
	for _, tc := range []struct{ n, f int }{{5, 2}, {9, 3}} {
		b.Run("n"+strconv.Itoa(tc.n)+"f"+strconv.Itoa(tc.f), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				procs := make([]async.Process, tc.n)
				for j := 0; j < tc.n; j++ {
					procs[j] = async.NewRoundBased(j, tc.n, tc.f, float64(j), async.MidpointUpdate, 20)
				}
				sim, err := async.NewSimulator(procs, async.UniformDelays(int64(i), 0.1), nil)
				if err != nil {
					b.Fatal(err)
				}
				if !sim.RunToQuiescence(1_000_000) {
					b.Fatal("no quiescence")
				}
			}
		})
	}
}

func BenchmarkAsyncMinRelay(b *testing.B) {
	for _, n := range []int{8, 32} {
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				procs := make([]async.Process, n)
				for j := 0; j < n; j++ {
					procs[j] = async.NewMinRelay(j, float64(j))
				}
				sim, err := async.NewSimulator(procs, async.UniformDelays(int64(i), 0.1), nil)
				if err != nil {
					b.Fatal(err)
				}
				if !sim.RunToQuiescence(5_000_000) {
					b.Fatal("no quiescence")
				}
			}
		})
	}
}

func BenchmarkDecider(b *testing.B) {
	d := approx.Decider{Alg: algorithms.Midpoint{}, Contraction: 0.5}
	worst := core.Fixed{G: graph.Deaf(graph.Complete(5), 0)}
	inputs := []float64{0, 1, 0.5, 0.5, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := d.Run(inputs, worst, 1, 1e-6)
		if !res.EpsAgreement {
			b.Fatal("decider failed")
		}
	}
}

func sizeName(n int) string { return "n" + strconv.Itoa(n) }
